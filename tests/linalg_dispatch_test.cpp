// Tests for the runtime CPU-dispatch layer (linalg/dispatch.hpp).
//
// The load-bearing property is the bitwise contract: every dispatched kernel
// must produce bit-identical results on every ISA tier the host supports,
// because tier selection is a throughput decision that may never leak into
// results, convergence, or determinism digests. The tests therefore compare
// raw bit patterns (not EXPECT_DOUBLE_EQ) of every SIMD kernel against its
// scalar `_ref` twin, on every supported tier, across sizes that exercise
// full vector bodies, tails of every residue length, and the empty case.
//
// The second half covers the override plumbing: set_isa_override /
// ScopedIsaOverride / TREESVD_ISA env resolution, clamp-to-host graceful
// fallback, and name parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/rotation.hpp"

namespace treesvd {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// Bit-level equality that distinguishes +0.0 / -0.0 and canonicalises no NaN.
::testing::AssertionResult BitEq(double a, double b) {
  if (bits(a) == bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << bits(a) << ") vs " << b << " (0x" << bits(b) << ")";
}

// Deterministic fill with spread exponents so any reassociation or FMA
// contraction in a vector kernel changes low-order bits.
void fill(std::mt19937_64& rng, std::span<double> out) {
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  std::uniform_int_distribution<int> expo(-12, 12);
  for (double& v : out) v = std::ldexp(mant(rng), expo(rng));
}

std::vector<IsaTier> supported_tiers() {
  std::vector<IsaTier> tiers;
  for (IsaTier t : {IsaTier::kBaseline, IsaTier::kAvx2, IsaTier::kAvx512}) {
    if (isa_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

// Sizes covering empty input, sub-vector lengths, every tail residue mod 8,
// and a length long enough for several full 512-bit bodies.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 15, 16, 17, 31, 32, 33, 100, 257};

class DispatchTierTest : public ::testing::TestWithParam<IsaTier> {
 protected:
  const KernelTable& table() const { return kernels_for(GetParam()); }
};

TEST_P(DispatchTierTest, TableIsFullyPopulatedAndLabelled) {
  const KernelTable& t = table();
  EXPECT_EQ(t.tier, GetParam());
  EXPECT_STREQ(t.name, isa_name(GetParam()));
  EXPECT_NE(t.dot, nullptr);
  EXPECT_NE(t.sumsq, nullptr);
  EXPECT_NE(t.axpy, nullptr);
  EXPECT_NE(t.gram_pair, nullptr);
  EXPECT_NE(t.rotate_and_norms, nullptr);
  EXPECT_NE(t.rotate_and_norms_swapped, nullptr);
  EXPECT_NE(t.gemm_micro, nullptr);
  EXPECT_NE(t.batched_dot, nullptr);
  EXPECT_NE(t.batched_sumsq, nullptr);
  EXPECT_NE(t.batched_gram_pair, nullptr);
  EXPECT_NE(t.batched_rotate_and_norms, nullptr);
  EXPECT_NE(t.batched_apply_rotation, nullptr);
  EXPECT_NE(t.batched_compute_rotation, nullptr);
  EXPECT_NE(t.batched_drift_gate, nullptr);
}

TEST_P(DispatchTierTest, DotSumsqAxpyBitwiseMatchRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0001);
  for (std::size_t n : kSizes) {
    std::vector<double> x(n), y(n);
    fill(rng, x);
    fill(rng, y);

    EXPECT_TRUE(BitEq(t.dot(x.data(), y.data(), n), dot_ref(x, y))) << "dot n=" << n;
    EXPECT_TRUE(BitEq(t.sumsq(x.data(), n), sumsq_ref(x))) << "sumsq n=" << n;

    std::vector<double> y_simd = y;
    std::vector<double> y_refv = y;
    const double alpha = 0x1.3p-2;
    t.axpy(alpha, x.data(), y_simd.data(), n);
    axpy_ref(alpha, x, y_refv);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(y_simd[i], y_refv[i])) << "axpy n=" << n << " i=" << i;
    }
  }
}

TEST_P(DispatchTierTest, GramPairBitwiseMatchesRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0002);
  for (std::size_t n : kSizes) {
    std::vector<double> x(n), y(n);
    fill(rng, x);
    fill(rng, y);
    double app = -1, aqq = -1, apq = -1;
    t.gram_pair(x.data(), y.data(), n, &app, &aqq, &apq);
    const GramPair g = gram_pair_ref(x, y);
    EXPECT_TRUE(BitEq(app, g.app)) << "n=" << n;
    EXPECT_TRUE(BitEq(aqq, g.aqq)) << "n=" << n;
    EXPECT_TRUE(BitEq(apq, g.apq)) << "n=" << n;
  }
}

TEST_P(DispatchTierTest, RotateAndNormsBitwiseMatchesRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0003);
  const double c = 0x1.bb67ae8584caap-1;  // cos/sin of a generic angle
  const double s = 0x1.0p-1;
  for (std::size_t n : kSizes) {
    for (bool swapped : {false, true}) {
      std::vector<double> x0(n), y0(n);
      fill(rng, x0);
      fill(rng, y0);

      std::vector<double> xs = x0, ys = y0, xr = x0, yr = y0;
      double xx = -1, yy = -1;
      if (swapped) {
        t.rotate_and_norms_swapped(xs.data(), ys.data(), n, c, s, &xx, &yy);
      } else {
        t.rotate_and_norms(xs.data(), ys.data(), n, c, s, &xx, &yy);
      }
      const RotatedNorms ref = swapped ? rotate_and_norms_swapped_ref(xr, yr, c, s)
                                       : rotate_and_norms_ref(xr, yr, c, s);
      EXPECT_TRUE(BitEq(xx, ref.app)) << "n=" << n << " swapped=" << swapped;
      EXPECT_TRUE(BitEq(yy, ref.aqq)) << "n=" << n << " swapped=" << swapped;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(BitEq(xs[i], xr[i])) << "x n=" << n << " i=" << i << " swapped=" << swapped;
        ASSERT_TRUE(BitEq(ys[i], yr[i])) << "y n=" << n << " i=" << i << " swapped=" << swapped;
      }
    }
  }
}

TEST_P(DispatchTierTest, GemmMicroKernelBitwiseMatchesRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0004);
  constexpr std::size_t kMr = 4, kNr = 4;
  for (std::size_t kc : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{8},
                         std::size_t{17}, std::size_t{64}}) {
    std::vector<double> ap(kc * kMr), bp(kc * kNr);
    fill(rng, ap);
    fill(rng, bp);
    std::vector<double> acc_simd(kMr * kNr), acc_ref(kMr * kNr);
    fill(rng, acc_simd);
    acc_ref = acc_simd;
    t.gemm_micro(ap.data(), bp.data(), kc, acc_simd.data());
    gemm_micro_ref(ap.data(), bp.data(), kc, acc_ref.data());
    for (std::size_t i = 0; i < kMr * kNr; ++i) {
      ASSERT_TRUE(BitEq(acc_simd[i], acc_ref[i])) << "kc=" << kc << " i=" << i;
    }
  }
}

TEST_P(DispatchTierTest, BatchedReductionsBitwiseMatchRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0005);
  for (std::size_t w : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    for (std::size_t m : {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
      std::vector<double> x(m * w), y(m * w);
      fill(rng, x);
      fill(rng, y);

      std::vector<double> out_simd(w, -1), out_ref(w, -1);
      t.batched_dot(x.data(), y.data(), m, w, out_simd.data());
      batched_dot_ref(x.data(), y.data(), m, w, out_ref.data());
      for (std::size_t b = 0; b < w; ++b) {
        ASSERT_TRUE(BitEq(out_simd[b], out_ref[b])) << "dot w=" << w << " m=" << m << " b=" << b;
      }

      t.batched_sumsq(x.data(), m, w, out_simd.data());
      batched_sumsq_ref(x.data(), m, w, out_ref.data());
      for (std::size_t b = 0; b < w; ++b) {
        ASSERT_TRUE(BitEq(out_simd[b], out_ref[b])) << "sumsq w=" << w << " m=" << m << " b=" << b;
      }

      std::vector<double> app_s(w), aqq_s(w), apq_s(w), app_r(w), aqq_r(w), apq_r(w);
      t.batched_gram_pair(x.data(), y.data(), m, w, app_s.data(), aqq_s.data(), apq_s.data());
      batched_gram_pair_ref(x.data(), y.data(), m, w, app_r.data(), aqq_r.data(), apq_r.data());
      for (std::size_t b = 0; b < w; ++b) {
        ASSERT_TRUE(BitEq(app_s[b], app_r[b])) << "gram w=" << w << " m=" << m << " b=" << b;
        ASSERT_TRUE(BitEq(aqq_s[b], aqq_r[b])) << "gram w=" << w << " m=" << m << " b=" << b;
        ASSERT_TRUE(BitEq(apq_s[b], apq_r[b])) << "gram w=" << w << " m=" << m << " b=" << b;
      }
    }
  }
}

TEST_P(DispatchTierTest, BatchedRotationsBitwiseMatchRef) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0006);
  std::uniform_real_distribution<double> ang(-3.0, 3.0);
  for (std::size_t w : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{7}, std::size_t{33}}) {
      std::vector<double> x0(m * w), y0(m * w), c(w), s(w);
      fill(rng, x0);
      fill(rng, y0);
      std::vector<std::uint8_t> rotate(w), swap_lanes(w);
      for (std::size_t b = 0; b < w; ++b) {
        const double a = ang(rng);
        c[b] = std::cos(a);
        s[b] = std::sin(a);
        rotate[b] = static_cast<std::uint8_t>(b % 3 != 0);  // mix masked-off lanes in
        swap_lanes[b] = static_cast<std::uint8_t>(b % 2);
      }

      std::vector<double> xs = x0, ys = y0, xr = x0, yr = y0;
      std::vector<double> app_s(w, -1), aqq_s(w, -1), app_r(w, -1), aqq_r(w, -1);
      t.batched_rotate_and_norms(xs.data(), ys.data(), m, w, c.data(), s.data(), rotate.data(),
                                 swap_lanes.data(), app_s.data(), aqq_s.data());
      batched_rotate_and_norms_ref(xr.data(), yr.data(), m, w, c.data(), s.data(), rotate.data(),
                                   swap_lanes.data(), app_r.data(), aqq_r.data());
      for (std::size_t i = 0; i < m * w; ++i) {
        ASSERT_TRUE(BitEq(xs[i], xr[i])) << "rnorm x w=" << w << " m=" << m << " i=" << i;
        ASSERT_TRUE(BitEq(ys[i], yr[i])) << "rnorm y w=" << w << " m=" << m << " i=" << i;
      }
      for (std::size_t b = 0; b < w; ++b) {
        if (!rotate[b]) continue;  // masked-off lanes' norm outputs are unspecified
        ASSERT_TRUE(BitEq(app_s[b], app_r[b])) << "rnorm app w=" << w << " m=" << m << " b=" << b;
        ASSERT_TRUE(BitEq(aqq_s[b], aqq_r[b])) << "rnorm aqq w=" << w << " m=" << m << " b=" << b;
      }

      xs = x0, ys = y0, xr = x0, yr = y0;
      t.batched_apply_rotation(xs.data(), ys.data(), m, w, c.data(), s.data(), rotate.data(),
                               swap_lanes.data());
      batched_apply_rotation_ref(xr.data(), yr.data(), m, w, c.data(), s.data(), rotate.data(),
                                 swap_lanes.data());
      for (std::size_t i = 0; i < m * w; ++i) {
        ASSERT_TRUE(BitEq(xs[i], xr[i])) << "apply x w=" << w << " m=" << m << " i=" << i;
        ASSERT_TRUE(BitEq(ys[i], yr[i])) << "apply y w=" << w << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST_P(DispatchTierTest, BatchedDecisionKernelsBitwiseMatchScalar) {
  const KernelTable& t = table();
  std::mt19937_64 rng(0x5eed0007);
  const double tol = 1e-13;
  const double guard = 8.0;
  for (std::size_t w : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    std::vector<double> app(w), aqq(w), apq(w);
    std::uniform_real_distribution<double> pos(1e-6, 4.0);
    for (std::size_t b = 0; b < w; ++b) {
      app[b] = pos(rng);
      aqq[b] = pos(rng);
      // Mix clearly-coupled, near-threshold, and orthogonal lanes.
      const double scale = (b % 3 == 0) ? 0.25 : (b % 3 == 1 ? tol : 0.0);
      apq[b] = scale * std::sqrt(app[b] * aqq[b]);
    }

    std::vector<double> c_s(w, -1), s_s(w, -1), c_r(w, -1), s_r(w, -1);
    std::vector<std::uint8_t> id_s(w, 9), id_r(w, 9);
    t.batched_compute_rotation(app.data(), aqq.data(), apq.data(), w, tol, c_s.data(),
                               s_s.data(), id_s.data());
    detail::batched_compute_rotation_scalar(app.data(), aqq.data(), apq.data(), w, tol,
                                            c_r.data(), s_r.data(), id_r.data());
    for (std::size_t b = 0; b < w; ++b) {
      ASSERT_TRUE(BitEq(c_s[b], c_r[b])) << "rot c w=" << w << " b=" << b;
      ASSERT_TRUE(BitEq(s_s[b], s_r[b])) << "rot s w=" << w << " b=" << b;
      ASSERT_EQ(id_s[b] != 0, id_r[b] != 0) << "rot id w=" << w << " b=" << b;
    }

    std::vector<std::uint8_t> near_s(w, 9), near_r(w, 9);
    t.batched_drift_gate(app.data(), aqq.data(), apq.data(), w, tol, guard, near_s.data());
    detail::batched_drift_gate_scalar(app.data(), aqq.data(), apq.data(), w, tol, guard,
                                      near_r.data());
    for (std::size_t b = 0; b < w; ++b) {
      ASSERT_EQ(near_s[b] != 0, near_r[b] != 0) << "gate w=" << w << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SupportedTiers, DispatchTierTest,
                         ::testing::ValuesIn(supported_tiers()),
                         [](const ::testing::TestParamInfo<IsaTier>& tier_info) {
                           std::string n = isa_name(tier_info.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// --------------------------------------------------------------------------
// Override plumbing.
// --------------------------------------------------------------------------

// Restores auto resolution (and the TREESVD_ISA env slot) after each test so
// override state never leaks across tests.
class DispatchOverrideTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("TREESVD_ISA");
    had_env_ = prev != nullptr;
    if (had_env_) saved_env_ = prev;
    ::unsetenv("TREESVD_ISA");
    set_isa_override(kIsaAuto);
  }
  void TearDown() override {
    if (had_env_) {
      ::setenv("TREESVD_ISA", saved_env_.c_str(), 1);
    } else {
      ::unsetenv("TREESVD_ISA");
    }
    set_isa_override(kIsaAuto);
  }

 private:
  bool had_env_ = false;
  std::string saved_env_;
};

TEST_F(DispatchOverrideTest, DetectionIsMonotoneAndAutoResolvesToDetected) {
  const IsaTier top = detected_isa();
  for (IsaTier t : {IsaTier::kBaseline, IsaTier::kAvx2, IsaTier::kAvx512}) {
    EXPECT_EQ(isa_supported(t), static_cast<int>(t) <= static_cast<int>(top));
  }
  EXPECT_EQ(resolved_isa(), top);
  EXPECT_EQ(kernels().tier, top);
}

TEST_F(DispatchOverrideTest, SetOverrideForcesSupportedTier) {
  for (IsaTier t : supported_tiers()) {
    set_isa_override(static_cast<int>(t));
    EXPECT_EQ(resolved_isa(), t);
    EXPECT_EQ(kernels().tier, t);
    EXPECT_STREQ(kernels().name, isa_name(t));
  }
  set_isa_override(kIsaAuto);
  EXPECT_EQ(resolved_isa(), detected_isa());
}

TEST_F(DispatchOverrideTest, UnsupportedForcedTierClampsToHost) {
  // Requesting past the top tier must clamp, never fail: forcing avx512f on
  // a narrower host silently runs the widest supported copy.
  set_isa_override(static_cast<int>(IsaTier::kAvx512));
  EXPECT_LE(static_cast<int>(resolved_isa()), static_cast<int>(detected_isa()));
  EXPECT_TRUE(isa_supported(resolved_isa()));
  EXPECT_EQ(kernels_for(IsaTier::kAvx512).tier,
            isa_supported(IsaTier::kAvx512) ? IsaTier::kAvx512 : detected_isa());
}

TEST_F(DispatchOverrideTest, ScopedOverrideRestoresPreviousResolution) {
  const IsaTier before = resolved_isa();
  {
    ScopedIsaOverride guard(static_cast<int>(IsaTier::kBaseline));
    EXPECT_EQ(resolved_isa(), IsaTier::kBaseline);
    {
      ScopedIsaOverride inner(kIsaAuto);  // no-op: must not disturb the outer force
      EXPECT_EQ(resolved_isa(), IsaTier::kBaseline);
    }
    EXPECT_EQ(resolved_isa(), IsaTier::kBaseline);
  }
  EXPECT_EQ(resolved_isa(), before);
}

TEST_F(DispatchOverrideTest, EnvVariableDrivesAutoResolution) {
  ::setenv("TREESVD_ISA", "baseline", 1);
  set_isa_override(kIsaAuto);  // re-derives from the environment
  EXPECT_EQ(resolved_isa(), IsaTier::kBaseline);
  EXPECT_STREQ(batched_kernel_isa(), batch_kernels_vectorized() ? "baseline" : "scalar-ref");

  if (isa_supported(IsaTier::kAvx2)) {
    ::setenv("TREESVD_ISA", "avx2", 1);
    set_isa_override(kIsaAuto);
    EXPECT_EQ(resolved_isa(), IsaTier::kAvx2);
  }

  // Garbage names are ignored: resolution falls through to detection.
  ::setenv("TREESVD_ISA", "quantum9000", 1);
  set_isa_override(kIsaAuto);
  EXPECT_EQ(resolved_isa(), detected_isa());

  ::unsetenv("TREESVD_ISA");
  set_isa_override(kIsaAuto);
  EXPECT_EQ(resolved_isa(), detected_isa());
}

TEST_F(DispatchOverrideTest, ParseIsaNameAcceptsKnownSpellings) {
  IsaTier t = IsaTier::kBaseline;
  EXPECT_TRUE(parse_isa_name("baseline", &t));
  EXPECT_EQ(t, IsaTier::kBaseline);
  EXPECT_TRUE(parse_isa_name("avx2", &t));
  EXPECT_EQ(t, IsaTier::kAvx2);
  EXPECT_TRUE(parse_isa_name("avx512f", &t));
  EXPECT_EQ(t, IsaTier::kAvx512);
  EXPECT_TRUE(parse_isa_name("avx512", &t));  // accepted alias
  EXPECT_EQ(t, IsaTier::kAvx512);

  t = IsaTier::kAvx2;
  EXPECT_FALSE(parse_isa_name("sse9", &t));
  EXPECT_FALSE(parse_isa_name("", &t));
  EXPECT_FALSE(parse_isa_name(nullptr, &t));
  EXPECT_EQ(t, IsaTier::kAvx2);  // failures leave *out untouched
}

TEST_F(DispatchOverrideTest, BatchedIsaReportMatchesResolvedTier) {
  if (!batch_kernels_vectorized()) GTEST_SKIP() << "no vector extensions in this build";
  for (IsaTier t : supported_tiers()) {
    ScopedIsaOverride guard(static_cast<int>(t));
    EXPECT_STREQ(batched_kernel_isa(), isa_name(t));
  }
}

// Public entry points (blas1/rotation) must route through the resolved table:
// forcing a different tier must not change a single bit of their output.
TEST_F(DispatchOverrideTest, PublicEntryPointsAreTierInvariant) {
  std::mt19937_64 rng(0x5eed0008);
  std::vector<double> x(97), y(97);
  fill(rng, x);
  fill(rng, y);
  const double c = std::cos(0.7), s = std::sin(0.7);

  struct Snapshot {
    double dot, sumsq, app, aqq, apq, rxx, ryy;
    std::vector<double> xrot, yrot;
  };
  auto run = [&] {
    Snapshot out;
    out.dot = dot(x, y);
    out.sumsq = sumsq(x);
    const GramPair g = gram_pair(x, y);
    out.app = g.app;
    out.aqq = g.aqq;
    out.apq = g.apq;
    out.xrot = x;
    out.yrot = y;
    const RotatedNorms rn = rotate_and_norms(out.xrot, out.yrot, c, s);
    out.rxx = rn.app;
    out.ryy = rn.aqq;
    return out;
  };

  std::vector<Snapshot> snaps;
  for (IsaTier t : supported_tiers()) {
    ScopedIsaOverride guard(static_cast<int>(t));
    snaps.push_back(run());
  }
  for (std::size_t k = 1; k < snaps.size(); ++k) {
    EXPECT_TRUE(BitEq(snaps[k].dot, snaps[0].dot));
    EXPECT_TRUE(BitEq(snaps[k].sumsq, snaps[0].sumsq));
    EXPECT_TRUE(BitEq(snaps[k].app, snaps[0].app));
    EXPECT_TRUE(BitEq(snaps[k].aqq, snaps[0].aqq));
    EXPECT_TRUE(BitEq(snaps[k].apq, snaps[0].apq));
    EXPECT_TRUE(BitEq(snaps[k].rxx, snaps[0].rxx));
    EXPECT_TRUE(BitEq(snaps[k].ryy, snaps[0].ryy));
    for (std::size_t i = 0; i < snaps[0].xrot.size(); ++i) {
      ASSERT_TRUE(BitEq(snaps[k].xrot[i], snaps[0].xrot[i]));
      ASSERT_TRUE(BitEq(snaps[k].yrot[i], snaps[0].yrot[i]));
    }
  }
}

}  // namespace
}  // namespace treesvd
