// Serving front-end: queue discipline, latency histogram, and the end-to-end
// contract that a served result is bitwise the direct sequential solve (batch
// composition under racy arrival order must never leak into payloads).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/serve.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

TEST(BoundedMpscQueue, FifoAndBoundedTryPush) {
  BoundedMpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: bounded, not growing
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 3), 3u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.try_push(4));
  got.clear();
  EXPECT_EQ(q.pop_batch(got, 8), 2u);
  EXPECT_EQ(got, (std::vector<int>{3, 4}));
}

TEST(BoundedMpscQueue, BlockingPushBackpressureReleasesOnPop) {
  BoundedMpscQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks until the consumer makes space
    second_pushed.store(true);
  });
  std::vector<int> got;
  // Consume one; the blocked producer must wake and complete.
  EXPECT_EQ(q.pop_batch(got, 1), 1u);
  EXPECT_EQ(got.front(), 1);
  got.clear();
  EXPECT_EQ(q.pop_batch(got, 1), 1u);  // waits for the producer if needed
  EXPECT_EQ(got.front(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedMpscQueue, CloseDrainsThenReportsExhaustion) {
  BoundedMpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));
  EXPECT_FALSE(q.push(9));
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 4), 1u);  // pending work still drains
  EXPECT_EQ(got.front(), 7);
  EXPECT_EQ(q.pop_batch(got, 4), 0u);  // closed and empty: exhausted
}

TEST(BoundedMpscQueue, CloseWakesBlockedConsumer) {
  BoundedMpscQueue<int> q(2);
  std::thread closer([&] { q.close(); });
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 1), 0u);  // must return instead of hanging
  closer.join();
}

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50_ns(), 0u);
  for (int i = 0; i < 90; ++i) h.record(100);    // bucket of 100ns
  for (int i = 0; i < 10; ++i) h.record(100000); // tail
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.p50_ns(), 127u);   // 100 lives in [64, 127]
  EXPECT_GE(h.p50_ns(), 100u);
  EXPECT_GE(h.p99_ns(), 100000u);
  EXPECT_LE(h.p50_ns(), h.p99_ns());
  EXPECT_EQ(h.max_ns(), 100000u);

  LatencyHistogram other;
  for (int i = 0; i < 100; ++i) other.record(1000000);
  h.merge(other);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_GE(h.p99_ns(), 1000000u);  // merged tail dominates p99
  EXPECT_LE(h.p50_ns(), 1048575u);
}

TEST(SvdServer, ServedResultsAreBitwiseDirectSolves) {
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 2;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(2024);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 23; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.wait_idle();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, inputs.size());
  EXPECT_EQ(stats.completed, inputs.size());
  EXPECT_EQ(stats.batched_lanes, inputs.size());
  EXPECT_GE(stats.batches, (inputs.size() + opt.batch.lane_width - 1) / opt.batch.lane_width /
                               opt.shards);
  EXPECT_EQ(stats.latency.count(), inputs.size());
  EXPECT_LE(stats.latency.p50_ns(), stats.latency.p99_ns());
  server.stop();
  EXPECT_FALSE(server.submit(inputs[0], &results[0]));  // stopped: rejected
}

TEST(SvdServer, ConcurrentProducersUnderBackpressure) {
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 2;  // tiny bound: producers must block and recover
  opt.batch.lane_width = 4;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(7);
  constexpr std::size_t kPerProducer = 6;
  std::vector<Matrix> inputs;
  for (std::size_t i = 0; i < 3 * kPerProducer; ++i)
    inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t idx = p * kPerProducer + i;
        ASSERT_TRUE(server.submit(inputs[idx], &results[idx]));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.wait_idle();
  server.stop();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

// ---------------------------------------------------------------------------
// Fault-tolerant serving: deadlines, shedding, isolation, supervision.
// ---------------------------------------------------------------------------

/// Polls `pred` until true or `timeout_ms` elapses (tests must never hang on
/// a broken condition; they fail loudly instead).
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 20000) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::steady_clock::now() - t0 > std::chrono::milliseconds(timeout_ms))
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(BoundedMpscQueue, RemoveIfShedsMatchesAndKeepsSurvivorFifo) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> removed;
  EXPECT_EQ(q.remove_if([](int v) { return v % 2 == 1; }, removed), 3u);
  EXPECT_EQ(removed, (std::vector<int>{1, 3, 5}));  // eviction order == FIFO
  std::vector<int> rest;
  EXPECT_EQ(q.pop_batch(rest, 8), 3u);
  EXPECT_EQ(rest, (std::vector<int>{0, 2, 4}));  // survivors keep their order

  // Eviction frees space: a producer blocked on a full queue must wake.
  BoundedMpscQueue<int> small(2);
  ASSERT_TRUE(small.try_push(10));
  ASSERT_TRUE(small.try_push(11));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(small.push(12));
    pushed.store(true);
  });
  std::vector<int> evicted;
  ASSERT_TRUE(eventually([&] {
    return small.remove_if([](int v) { return v == 10; }, evicted) == 1 || evicted.size() == 1;
  }));
  ASSERT_TRUE(eventually([&] { return pushed.load(); }));
  producer.join();
  std::vector<int> tail;
  EXPECT_EQ(small.pop_batch(tail, 4), 2u);
  EXPECT_EQ(tail, (std::vector<int>{11, 12}));
}

TEST(BoundedMpscQueue, CloseDrainContentionLosesNothing) {
  // Producers, an evicting shedder, and a mid-stream close all hammer one
  // queue; every accepted item must surface exactly once (popped or evicted)
  // and per-producer FIFO must hold among the popped. Several close points
  // give TSan distinct interleavings over the close/drain edge.
  for (int close_after : {0, 5, 20, 1000000}) {
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 64;
    BoundedMpscQueue<int> q(8);
    std::vector<std::vector<int>> accepted(kProducers);
    std::atomic<int> popped_count{0};
    std::atomic<int> producers_done{0};
    std::atomic<bool> closer_done{false};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const int v = p * 1000 + i;
          bool ok = false;
          if (i % 2 == 0) {
            ok = q.push(v);  // blocking leg: exercises cv_space_ under close
          } else {
            while (!(ok = q.try_push(v)) && !q.closed()) std::this_thread::yield();
          }
          if (!ok) break;  // closed: everything after would also be dropped
          accepted[p].push_back(v);
        }
        producers_done.fetch_add(1);
      });
    }
    // Closes at the cut point — or once every producer finished, so cut
    // points past the total item count still terminate the consumer.
    std::thread closer([&] {
      while (popped_count.load() < close_after && producers_done.load() < kProducers)
        std::this_thread::yield();
      q.close();
      closer_done.store(true);
    });
    std::vector<int> shed;
    std::thread shedder([&] {
      // The shed path under contention: evict a sparse value class while
      // producers and the consumer race it for the lock.
      while (!closer_done.load()) {
        q.remove_if([](int v) { return v % 97 == 13; }, shed);
        std::this_thread::yield();
      }
    });

    std::vector<int> popped;
    std::vector<int> batch;
    for (;;) {
      batch.clear();
      if (q.pop_batch(batch, 5) == 0) break;  // closed and drained
      for (int v : batch) popped.push_back(v);
      popped_count.store(static_cast<int>(popped.size()));
    }
    for (auto& t : producers) t.join();
    closer_done.store(true);
    closer.join();
    shedder.join();
    // close() may have raced the last pushes; drain any residue.
    for (;;) {
      batch.clear();
      if (q.pop_batch(batch, 8) == 0) break;
      for (int v : batch) popped.push_back(v);
    }

    std::multiset<int> in;
    for (const auto& a : accepted) in.insert(a.begin(), a.end());
    std::multiset<int> out(popped.begin(), popped.end());
    out.insert(shed.begin(), shed.end());
    EXPECT_EQ(in, out) << "close_after=" << close_after
                       << ": accepted items must be popped or shed exactly once";
    // Per-producer FIFO among the popped (eviction only deletes, never
    // reorders survivors).
    for (int p = 0; p < kProducers; ++p) {
      int last = -1;
      for (int v : popped) {
        if (v / 1000 != p) continue;
        EXPECT_LT(last, v) << "producer " << p << " order violated";
        last = v;
      }
    }
  }
}

TEST(SvdServer, StatsSnapshotIsRaceFreeUnderLoad) {
  // Regression for the snapshot race: stats() used to read each shard's
  // histogram without the stats mutex while shards recorded into it. Under
  // TSan this test is the detector; under plain builds it checks the final
  // accounting identities.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 2;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(11);
  constexpr std::size_t kRequests = 48;
  std::vector<Matrix> inputs;
  for (std::size_t i = 0; i < kRequests; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());

  std::atomic<bool> done{false};
  std::thread poller([&] {
    // Hammer the snapshot path concurrently with shard-side recording. Only
    // monotone bounds hold mid-flight (counters are read at distinct
    // instants); the exact identities are checked on the quiescent snapshot.
    while (!done.load()) {
      const ServeStats s = server.stats();
      EXPECT_LE(s.completed, kRequests);
      EXPECT_LE(s.latency.count(), kRequests);
      EXPECT_LE(s.solved + s.expired + s.failed, kRequests);
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < kRequests; i += 3)
        ASSERT_TRUE(server.submit(inputs[i], &results[i]));
    });
  }
  for (auto& t : producers) t.join();
  server.wait_idle();
  done.store(true);
  poller.join();

  const ServeStats s = server.stats();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_EQ(s.completed, kRequests);
  EXPECT_EQ(s.solved, kRequests);
  EXPECT_EQ(s.latency.count(), kRequests);
  std::uint64_t shard_lanes = 0;
  for (const ShardSnapshot& sh : s.shards) shard_lanes += sh.lanes;
  EXPECT_EQ(shard_lanes, kRequests);
  server.stop();
}

TEST(SvdServer, LeastLoadedRoutingStarvesStalledShard) {
  // Shard 0 stalls at startup (fault plan); its queue holds exactly the one
  // request admitted before its load became visible, and every subsequent
  // submission must route to shard 1 — least-loaded admission starves the
  // stalled shard without any explicit health signal. Round-robin would have
  // parked half the work behind the stall.
  const OrderingPtr ord = make_ordering("round-robin");
  constexpr std::size_t kHealthy = 6;  // requests routed while shard 0 stalls
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 2;
  opt.queue_capacity = 16;
  opt.batch.lane_width = 4;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = kHealthy + 2;  // released by the final submit
  opt.faults.stall_micros = 30000000;               // safety bound only
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(13);
  std::vector<Matrix> inputs;
  for (std::size_t i = 0; i < kHealthy + 2; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());

  // Request 0: both shards idle, ties go to shard 0 — which is stalled, so
  // its load stays pinned at 1 for the rest of the stall window.
  ASSERT_TRUE(server.submit(inputs[0], &results[0]));
  for (std::size_t i = 1; i <= kHealthy; ++i) {
    ASSERT_TRUE(server.submit(inputs[i], &results[i]));
    // Wait for shard 1's load (queued + in-flight) to drain to 0 before the
    // next admission — every pick is then deterministic (0 < 1).
    ASSERT_TRUE(eventually([&] {
      const ServeStats s = server.stats();
      return s.completed >= i && s.shards[1].queued == 0 && s.shards[1].inflight == 0;
    }));
  }
  // The final submission crosses stall_until_submitted and releases shard 0.
  ASSERT_TRUE(server.submit(inputs[kHealthy + 1], &results[kHealthy + 1]));
  server.wait_idle();

  const ServeStats s = server.stats();
  EXPECT_EQ(s.stalls_injected, 1u);
  EXPECT_EQ(s.solved, kHealthy + 2);
  ASSERT_EQ(s.shards.size(), 2u);
  EXPECT_EQ(s.shards[0].lanes, 1u) << "stalled shard must only see the pre-stall request";
  EXPECT_GE(s.shards[1].lanes, kHealthy) << "healthy shard must absorb the stall-window load";
  server.stop();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

TEST(SvdServer, DeadlineExpiresAtFormationWithoutBurningALane) {
  // Two requests admitted with 1 ns deadlines behind a stalled shard must
  // complete kDeadlineExpired at batch formation, and the lone healthy
  // batchmate must solve in a batch of exactly one lane.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 3;
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(17);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(3);

  SubmitOptions doomed;
  doomed.deadline_ns = 1;  // expires long before the stall releases
  ASSERT_EQ(server.submit(inputs[0], &results[0], doomed), SubmitOutcome::kAccepted);
  ASSERT_EQ(server.submit(inputs[1], &results[1], doomed), SubmitOutcome::kAccepted);
  ASSERT_TRUE(server.submit(inputs[2], &results[2]));  // releases the stall
  server.wait_idle();

  EXPECT_EQ(results[0].status, SvdStatus::kDeadlineExpired);
  EXPECT_EQ(results[1].status, SvdStatus::kDeadlineExpired);
  EXPECT_FALSE(results[0].converged);
  EXPECT_FALSE(results[0].diagnostics.error.empty());
  const SvdResult ref = one_sided_jacobi(inputs[2], *ord, opt.batch.jacobi);
  EXPECT_EQ(result_digest(results[2]), result_digest(ref));

  const ServeStats s = server.stats();
  EXPECT_EQ(s.expired, 2u);
  EXPECT_EQ(s.shed, 0u);  // formation-time expiry, not admission-time shedding
  EXPECT_EQ(s.solved, 1u);
  EXPECT_EQ(s.batched_lanes, 1u) << "expired requests must not burn SIMD lanes";
  EXPECT_EQ(s.batches, 1u);
  server.stop();
}

TEST(SvdServer, ShedExpiredPolicyEvictsDeadEntriesRejectOnlyBounces) {
  // A full queue of already-expired requests: kReject bounces, kShedExpired
  // evicts the dead entries (completing them kDeadlineExpired) and admits.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 2;  // exactly the two doomed requests
  opt.batch.lane_width = 4;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 4;
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(19);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(4);

  SubmitOptions doomed;
  doomed.deadline_ns = 1;
  ASSERT_EQ(server.submit(inputs[0], &results[0], doomed), SubmitOutcome::kAccepted);
  ASSERT_EQ(server.submit(inputs[1], &results[1], doomed), SubmitOutcome::kAccepted);

  // Queue is full and the shard is stalled: the non-blocking path must bounce
  // without touching the queued entries.
  EXPECT_FALSE(server.try_submit(inputs[2], &results[2]));
  EXPECT_EQ(server.stats().rejected, 1u);

  // Shedding admission evicts both expired entries and takes their space.
  SubmitOptions shedding;
  shedding.policy = SubmitPolicy::kShedExpired;
  ASSERT_EQ(server.submit(inputs[2], &results[2], shedding), SubmitOutcome::kAccepted);
  EXPECT_EQ(results[0].status, SvdStatus::kDeadlineExpired);
  EXPECT_EQ(results[1].status, SvdStatus::kDeadlineExpired);
  {
    const ServeStats s = server.stats();
    EXPECT_EQ(s.shed, 2u);
    EXPECT_EQ(s.expired, 2u);
  }

  ASSERT_TRUE(server.submit(inputs[3], &results[3]));  // 4th submit: stall releases
  server.wait_idle();
  const ServeStats s = server.stats();
  EXPECT_EQ(s.solved, 2u);
  EXPECT_EQ(s.expired, 2u);
  server.stop();

  for (int i = 2; i < 4; ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

TEST(SvdServer, PoisonInputFailsAloneAndBatchmatesStayBitwise) {
  // One NaN input inside a six-lane batch: the batch solve throws, the shard
  // isolates lane by lane, and only the poison request completes kFailed —
  // every batchmate's payload is bitwise the direct sequential solve.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 8;  // wide enough to take all six in one batch
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 6;  // all six queued before the first pop
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(23);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  inputs[2](1, 3) = std::numeric_limits<double>::quiet_NaN();
  std::vector<SvdResult> results(6);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.wait_idle();

  EXPECT_EQ(results[2].status, SvdStatus::kFailed);
  EXPECT_FALSE(results[2].converged);
  EXPECT_FALSE(results[2].diagnostics.error.empty());
  const ServeStats s = server.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.solved, 5u);
  server.stop();

  for (int i = 0; i < 6; ++i) {
    if (i == 2) continue;
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "batchmate " << i;
  }
}

TEST(SvdServer, SupervisorRestartsDeadShardAndRequeuesInflight) {
  // The fault plan kills the shard thread while a full four-lane batch is in
  // flight. The supervisor must join the corpse, rebuild a fresh engine,
  // requeue all four requests, and the restarted shard must solve them with
  // payloads bitwise equal to the sequential driver.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  opt.supervisor.poll_micros = 200;
  opt.supervisor.quarantine_after = 2;
  opt.faults.enabled = true;
  opt.faults.kill_request = 0;
  opt.faults.kill_repeat = 1;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 4;  // all four share the fatal batch
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(29);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.wait_idle();

  const ServeStats s = server.stats();
  EXPECT_EQ(s.kills, 1u);
  EXPECT_EQ(s.restarts, 1u);
  EXPECT_EQ(s.quarantines, 0u);
  EXPECT_EQ(s.requeued, 4u);
  EXPECT_EQ(s.solved, 4u);
  ASSERT_EQ(s.shards.size(), 1u);
  EXPECT_EQ(s.shards[0].deaths, 1u);
  EXPECT_FALSE(s.shards[0].dead);
  EXPECT_FALSE(s.shards[0].quarantined);
  server.stop();

  for (int i = 0; i < 4; ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

TEST(SvdServer, RepeatOffenderIsQuarantinedAndWorkReroutes) {
  // quarantine_after = 0: the first death retires shard 0 for good. Its
  // in-flight work must move to shard 1 and the server must keep serving.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 2;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  opt.supervisor.poll_micros = 200;
  opt.supervisor.quarantine_after = 0;
  opt.faults.enabled = true;
  opt.faults.kill_request = 0;  // idle tie-break routes request 0 to shard 0
  opt.faults.kill_repeat = 1;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(31);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(5);
  // Request 0 routes to idle shard 0 (tie-break), kills it, and the first
  // death retires it. Waiting for the quarantine before submitting more
  // keeps every later admission deterministic (only shard 1 is healthy).
  ASSERT_TRUE(server.submit(inputs[0], &results[0]));
  ASSERT_TRUE(eventually([&] { return server.stats().quarantines >= 1; }))
      << "supervisor never quarantined the killed shard";
  for (int i = 1; i < 5; ++i) ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.wait_idle();

  const ServeStats s = server.stats();
  EXPECT_EQ(s.kills, 1u);
  EXPECT_EQ(s.restarts, 0u);
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.requeued, 1u) << "the in-flight kill victim must move to shard 1";
  EXPECT_EQ(s.solved, 5u);
  ASSERT_EQ(s.shards.size(), 2u);
  EXPECT_EQ(s.shards[0].deaths, 1u);
  EXPECT_TRUE(s.shards[0].quarantined);
  EXPECT_FALSE(s.shards[1].quarantined);
  server.stop();

  for (int i = 0; i < 5; ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

TEST(SvdServer, StuckShardIsDetectedThenRecovers) {
  // A stalled shard with queued work stops heartbeating: the supervisor must
  // count it stuck. The stall releases on a later submission (an event in the
  // request trace), after which everything still solves.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  opt.supervisor.poll_micros = 200;
  opt.supervisor.stuck_after_micros = 3000;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 3;
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(37);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(3);
  ASSERT_TRUE(server.submit(inputs[0], &results[0]));
  ASSERT_TRUE(server.submit(inputs[1], &results[1]));
  ASSERT_TRUE(eventually([&] { return server.stats().stuck_detected >= 1; }))
      << "supervisor never flagged the stalled shard";
  ASSERT_TRUE(server.submit(inputs[2], &results[2]));  // releases the stall
  server.wait_idle();

  const ServeStats s = server.stats();
  EXPECT_GE(s.stuck_detected, 1u);
  EXPECT_EQ(s.solved, 3u);
  EXPECT_EQ(s.kills, 0u);  // stuck is detection-only, never a kill
  server.stop();

  for (int i = 0; i < 3; ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

TEST(SvdServer, ReadinessWatermarksHysteresis) {
  // Backlog >= high drops ready(); it stays down until backlog <= low.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  opt.high_watermark = 2;
  opt.low_watermark = 1;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 3;
  opt.faults.stall_micros = 30000000;
  SvdServer server(*ord, opt);
  server.start();
  EXPECT_TRUE(server.ready());

  Rng rng(41);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(3);
  ASSERT_TRUE(server.submit(inputs[0], &results[0]));
  ASSERT_TRUE(server.submit(inputs[1], &results[1]));
  // Backlog is pinned at 2 (== high) behind the stall: overloaded.
  EXPECT_FALSE(server.ready());
  ASSERT_TRUE(server.submit(inputs[2], &results[2]));  // releases the stall
  server.wait_idle();
  EXPECT_TRUE(server.ready()) << "drained backlog must restore readiness";
  server.stop();
  EXPECT_FALSE(server.ready()) << "a stopped server is never ready";
}

TEST(ServeFaultPlan, RequestFaultIsAPureSeededPartition) {
  ServeFaultPlan plan;
  plan.enabled = true;
  plan.seed = 42;
  plan.poison_prob = 0.15;
  plan.throw_prob = 0.15;
  plan.expire_prob = 0.15;

  // Pure function of (seed, id): identical plans agree on every id.
  ServeFaultPlan copy = plan;
  std::size_t poison = 0, thrown = 0, expire = 0, none = 0;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    const auto f = plan.request_fault(id);
    ASSERT_EQ(f, copy.request_fault(id)) << "id " << id;
    ASSERT_EQ(f, plan.request_fault(id)) << "id " << id;  // and across calls
    switch (f) {
      case ServeFaultPlan::RequestFault::kPoison: ++poison; break;
      case ServeFaultPlan::RequestFault::kThrow: ++thrown; break;
      case ServeFaultPlan::RequestFault::kExpire: ++expire; break;
      case ServeFaultPlan::RequestFault::kNone: ++none; break;
    }
  }
  // Bands roughly match their probabilities (loose: this is a hash, not an
  // exact partition of a finite set).
  EXPECT_NEAR(static_cast<double>(poison) / 4096.0, 0.15, 0.05);
  EXPECT_NEAR(static_cast<double>(thrown) / 4096.0, 0.15, 0.05);
  EXPECT_NEAR(static_cast<double>(expire) / 4096.0, 0.15, 0.05);
  EXPECT_NEAR(static_cast<double>(none) / 4096.0, 0.55, 0.05);

  // A different seed reshuffles the partition.
  ServeFaultPlan other = plan;
  other.seed = 43;
  bool differs = false;
  for (std::uint64_t id = 0; id < 4096 && !differs; ++id)
    differs = other.request_fault(id) != plan.request_fault(id);
  EXPECT_TRUE(differs);

  // Disabled (or probability-free) plans inject nothing.
  ServeFaultPlan off = plan;
  off.enabled = false;
  ServeFaultPlan zero;
  zero.enabled = true;
  for (std::uint64_t id = 0; id < 256; ++id) {
    EXPECT_EQ(off.request_fault(id), ServeFaultPlan::RequestFault::kNone);
    EXPECT_EQ(zero.request_fault(id), ServeFaultPlan::RequestFault::kNone);
  }
}

TEST(SvdServer, StopDrainsEveryAcceptedRequestToATerminalState) {
  // Requests parked behind a stalled shard when stop() arrives must still
  // reach a terminal state — stop() closes, drains solo, and loses nothing.
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 4;
  opt.batch.lane_width = 4;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = 99;  // never released by submissions
  opt.faults.stall_micros = 30000000;     // stop() breaks the stall instead
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(43);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(3);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.stop();  // queue still full: the drain must finish all three

  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.solved, 3u);
  for (int i = 0; i < 3; ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

}  // namespace
}  // namespace treesvd
