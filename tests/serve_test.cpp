// Serving front-end: queue discipline, latency histogram, and the end-to-end
// contract that a served result is bitwise the direct sequential solve (batch
// composition under racy arrival order must never leak into payloads).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/serve.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

TEST(BoundedMpscQueue, FifoAndBoundedTryPush) {
  BoundedMpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: bounded, not growing
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 3), 3u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.try_push(4));
  got.clear();
  EXPECT_EQ(q.pop_batch(got, 8), 2u);
  EXPECT_EQ(got, (std::vector<int>{3, 4}));
}

TEST(BoundedMpscQueue, BlockingPushBackpressureReleasesOnPop) {
  BoundedMpscQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks until the consumer makes space
    second_pushed.store(true);
  });
  std::vector<int> got;
  // Consume one; the blocked producer must wake and complete.
  EXPECT_EQ(q.pop_batch(got, 1), 1u);
  EXPECT_EQ(got.front(), 1);
  got.clear();
  EXPECT_EQ(q.pop_batch(got, 1), 1u);  // waits for the producer if needed
  EXPECT_EQ(got.front(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedMpscQueue, CloseDrainsThenReportsExhaustion) {
  BoundedMpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));
  EXPECT_FALSE(q.push(9));
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 4), 1u);  // pending work still drains
  EXPECT_EQ(got.front(), 7);
  EXPECT_EQ(q.pop_batch(got, 4), 0u);  // closed and empty: exhausted
}

TEST(BoundedMpscQueue, CloseWakesBlockedConsumer) {
  BoundedMpscQueue<int> q(2);
  std::thread closer([&] { q.close(); });
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 1), 0u);  // must return instead of hanging
  closer.join();
}

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50_ns(), 0u);
  for (int i = 0; i < 90; ++i) h.record(100);    // bucket of 100ns
  for (int i = 0; i < 10; ++i) h.record(100000); // tail
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.p50_ns(), 127u);   // 100 lives in [64, 127]
  EXPECT_GE(h.p50_ns(), 100u);
  EXPECT_GE(h.p99_ns(), 100000u);
  EXPECT_LE(h.p50_ns(), h.p99_ns());
  EXPECT_EQ(h.max_ns(), 100000u);

  LatencyHistogram other;
  for (int i = 0; i < 100; ++i) other.record(1000000);
  h.merge(other);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_GE(h.p99_ns(), 1000000u);  // merged tail dominates p99
  EXPECT_LE(h.p50_ns(), 1048575u);
}

TEST(SvdServer, ServedResultsAreBitwiseDirectSolves) {
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 2;
  opt.queue_capacity = 8;
  opt.batch.lane_width = 4;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(2024);
  std::vector<Matrix> inputs;
  for (int i = 0; i < 23; ++i) inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    ASSERT_TRUE(server.submit(inputs[i], &results[i]));
  server.wait_idle();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, inputs.size());
  EXPECT_EQ(stats.completed, inputs.size());
  EXPECT_EQ(stats.batched_lanes, inputs.size());
  EXPECT_GE(stats.batches, (inputs.size() + opt.batch.lane_width - 1) / opt.batch.lane_width /
                               opt.shards);
  EXPECT_EQ(stats.latency.count(), inputs.size());
  EXPECT_LE(stats.latency.p50_ns(), stats.latency.p99_ns());
  server.stop();
  EXPECT_FALSE(server.submit(inputs[0], &results[0]));  // stopped: rejected
}

TEST(SvdServer, ConcurrentProducersUnderBackpressure) {
  const OrderingPtr ord = make_ordering("round-robin");
  ServeOptions opt;
  opt.rows = 8;
  opt.cols = 6;
  opt.shards = 1;
  opt.queue_capacity = 2;  // tiny bound: producers must block and recover
  opt.batch.lane_width = 4;
  SvdServer server(*ord, opt);
  server.start();

  Rng rng(7);
  constexpr std::size_t kPerProducer = 6;
  std::vector<Matrix> inputs;
  for (std::size_t i = 0; i < 3 * kPerProducer; ++i)
    inputs.push_back(random_gaussian(8, 6, rng));
  std::vector<SvdResult> results(inputs.size());
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t idx = p * kPerProducer + i;
        ASSERT_TRUE(server.submit(inputs[idx], &results[idx]));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.wait_idle();
  server.stop();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ord, opt.batch.jacobi);
    EXPECT_EQ(result_digest(results[i]), result_digest(ref)) << "request " << i;
  }
}

}  // namespace
}  // namespace treesvd
