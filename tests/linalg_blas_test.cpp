// Tests for the BLAS-1 kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/blas1.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

TEST(Blas1, Dot) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(dot(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Blas1, Nrm2Simple) {
  const std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2(std::vector<double>{0, 0, 0}), 0.0);
}

TEST(Blas1, Nrm2AvoidsOverflowAndUnderflow) {
  const std::vector<double> big = {1e300, 1e300};
  EXPECT_TRUE(std::isfinite(nrm2(big)));
  EXPECT_NEAR(nrm2(big) / 1e300, std::sqrt(2.0), 1e-12);
  const std::vector<double> tiny = {1e-300, 1e-300};
  EXPECT_GT(nrm2(tiny), 0.0);
  EXPECT_NEAR(nrm2(tiny) / 1e-300, std::sqrt(2.0), 1e-12);
}

TEST(Blas1, Axpy) {
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Blas1, Scal) {
  std::vector<double> x = {1, -2, 3};
  scal(-2.0, x);
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(Blas1, Swap) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  swap(std::span<double>(x), std::span<double>(y));
  EXPECT_EQ(x, (std::vector<double>{3, 4}));
  EXPECT_EQ(y, (std::vector<double>{1, 2}));
}

TEST(Blas1, SumsqMatchesDotWithSelf) {
  Rng rng(13);
  // Sizes straddle the kernel's 4-way unroll boundary, including the tail.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{5}, std::size_t{97}, std::size_t{256}}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.normal();
    EXPECT_NEAR(sumsq(x), dot(x, x), 1e-12 * (1.0 + dot(x, x))) << "n=" << n;
  }
}

TEST(Blas1, SumsqExactOnSmallIntegers) {
  const std::vector<double> x = {1, -2, 3, -4, 5};
  EXPECT_DOUBLE_EQ(sumsq(x), 55.0);
}

TEST(Blas1, GramPairMatchesSeparateKernels) {
  Rng rng(11);
  std::vector<double> x(97);
  std::vector<double> y(97);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const GramPair g = gram_pair(x, y);
  EXPECT_NEAR(g.app, dot(x, x), 1e-10);
  EXPECT_NEAR(g.aqq, dot(y, y), 1e-10);
  EXPECT_NEAR(g.apq, dot(x, y), 1e-10);
}

TEST(Blas1, GramPairZeroVectors) {
  const std::vector<double> z(5, 0.0);
  const GramPair g = gram_pair(z, z);
  EXPECT_EQ(g.app, 0.0);
  EXPECT_EQ(g.aqq, 0.0);
  EXPECT_EQ(g.apq, 0.0);
}

}  // namespace
}  // namespace treesvd
