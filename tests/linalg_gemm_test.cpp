// Tests for the BLAS-3 layer: the tiled/packed GEMM against a naive
// reference over random shapes (tile multiples and not, tall panels, 1 x k
// edge cases), syrk_t, the gathered-panel Gram, the fused blocked panel
// apply, and threaded-vs-serial bitwise determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/generators.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

/// Plain jki reference product (the seed's Matrix::operator* loop).
Matrix naive_product(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double bkj = b(k, j);
      for (std::size_t i = 0; i < a.rows(); ++i) c(i, j) += a(i, k) * bkj;
    }
  return c;
}

void expect_close(const Matrix& got, const Matrix& want, const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  const double scale = 1.0 + want.max_abs();
  for (std::size_t j = 0; j < want.cols(); ++j)
    for (std::size_t i = 0; i < want.rows(); ++i)
      EXPECT_NEAR(got(i, j), want(i, j), 1e-12 * scale) << what << " (" << i << "," << j << ")";
}

TEST(Gemm, MatchesNaiveOverShapes) {
  // m, k, n triples: tiny, non-tile-multiples, tall panels (m >> n), wide,
  // and 1 x k degenerate shapes.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 1, 1},   {1, 7, 1},    {5, 1, 9},    {17, 3, 29},  {64, 64, 64},
      {100, 37, 53}, {130, 67, 41}, {513, 32, 8}, {1025, 16, 16}, {3, 200, 5},
      {2, 257, 31},  {33, 129, 65}};
  Rng rng(42);
  for (const auto& [m, k, n] : shapes) {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    expect_close(gemm(a, b), naive_product(a, b),
                 "gemm " + std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n));
  }
}

TEST(Gemm, SmallTilingExercisesEveryEdge) {
  // A deliberately tiny tiling forces many partial tiles and packed-buffer
  // edges even at modest sizes.
  Rng rng(43);
  GemmTiling tiny;
  tiny.mc = 8;
  tiny.kc = 8;
  tiny.nc = 8;
  for (const std::size_t m : {std::size_t{9}, std::size_t{16}, std::size_t{23}}) {
    const Matrix a = random_matrix(m, 13, rng);
    const Matrix b = random_matrix(13, m + 3, rng);
    expect_close(gemm(a, b, nullptr, tiny), naive_product(a, b), "tiny tiling");
  }
}

TEST(Gemm, ThreadedBitwiseEqualsSerial) {
  // Tiles own disjoint C regions and run identical code, so threading must
  // not change a single bit.
  Rng rng(44);
  const Matrix a = random_matrix(301, 157, rng);
  const Matrix b = random_matrix(157, 203, rng);
  ThreadPool pool(4);
  const Matrix serial = gemm(a, b, nullptr);
  const Matrix threaded = gemm(a, b, &pool);
  EXPECT_EQ(serial, threaded);
}

TEST(Gemm, OperatorRoutesThroughTiledPath) {
  Rng rng(45);
  const Matrix a = random_matrix(140, 90, rng);
  const Matrix b = random_matrix(90, 70, rng);
  expect_close(a * b, naive_product(a, b), "operator*");
  // Identity must be exact.
  const Matrix i = Matrix::identity(90);
  EXPECT_EQ(a * i, a);
}

TEST(Gemm, IntoRejectsShapeMismatch) {
  const Matrix a(4, 3);
  const Matrix b(3, 5);
  Matrix wrong(4, 4);
  EXPECT_THROW(gemm_into(wrong, a, b), std::invalid_argument);
  Matrix bad_inner(5, 4);
  EXPECT_THROW(gemm_into(bad_inner, b, a), std::invalid_argument);
}

TEST(SyrkT, MatchesTransposedProduct) {
  Rng rng(46);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{50, 7},
                            {513, 32},
                            {64, 64},
                            {9, 17}}) {
    const Matrix a = random_matrix(m, n, rng);
    const Matrix ref = naive_product(a.transposed(), a);
    const Matrix g = syrk_t(a);
    expect_close(g, ref, "syrk_t");
    // Exact symmetry by construction (mirrored, not recomputed).
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(SyrkT, ThreadedBitwiseEqualsSerial) {
  Rng rng(47);
  const Matrix a = random_matrix(700, 90, rng);
  ThreadPool pool(4);
  EXPECT_EQ(syrk_t(a, nullptr), syrk_t(a, &pool));
}

TEST(GramPanel, MatchesGatheredReference) {
  Rng rng(48);
  const Matrix a = random_matrix(777, 24, rng);
  const std::vector<int> cols = {3, 0, 17, 9, 21, 4, 11};
  const Matrix g = gram_panel(a, cols);
  ASSERT_EQ(g.rows(), cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i)
    for (std::size_t j = 0; j < cols.size(); ++j) {
      double ref = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r)
        ref += a(r, static_cast<std::size_t>(cols[i])) * a(r, static_cast<std::size_t>(cols[j]));
      EXPECT_NEAR(g(i, j), ref, 1e-10 * (1.0 + std::fabs(ref))) << i << "," << j;
      EXPECT_EQ(g(i, j), g(j, i));
    }
}

TEST(GramPanel, ThreadedBitwiseEqualsSerial) {
  Rng rng(49);
  const Matrix a = random_matrix(4096, 40, rng);
  std::vector<int> cols(32);
  std::iota(cols.begin(), cols.end(), 5);
  ThreadPool pool(4);
  EXPECT_EQ(gram_panel(a, cols, nullptr), gram_panel(a, cols, &pool));
}

TEST(ApplyPanelUpdate, MatchesReferenceAndReturnsFreshNorms) {
  Rng rng(50);
  Matrix a = random_matrix(611, 20, rng);
  const Matrix orig = a;
  const std::vector<int> cols = {2, 7, 3, 15, 9, 0};
  const std::size_t kw = cols.size();
  const Matrix w = random_matrix(kw, kw, rng);
  const std::vector<double> sq = apply_panel_update(a, cols, w);
  ASSERT_EQ(sq.size(), kw);
  for (std::size_t j = 0; j < kw; ++j) {
    double ssq = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      double ref = 0.0;
      for (std::size_t k = 0; k < kw; ++k)
        ref += orig(r, static_cast<std::size_t>(cols[k])) * w(k, j);
      EXPECT_NEAR(a(r, static_cast<std::size_t>(cols[j])), ref, 1e-11 * (1.0 + std::fabs(ref)));
      const double stored = a(r, static_cast<std::size_t>(cols[j]));
      ssq += stored * stored;
    }
    // The returned norm is a reduction of the *stored* values.
    EXPECT_NEAR(sq[j], ssq, 1e-10 * (1.0 + ssq)) << j;
  }
  // Untouched columns must be bitwise untouched.
  for (std::size_t j = 0; j < a.cols(); ++j) {
    if (std::find(cols.begin(), cols.end(), static_cast<int>(j)) != cols.end()) continue;
    for (std::size_t r = 0; r < a.rows(); ++r) EXPECT_EQ(a(r, j), orig(r, j));
  }
}

TEST(ApplyPanelUpdate, IdentityIsExact) {
  Rng rng(51);
  Matrix a = random_matrix(100, 8, rng);
  const Matrix orig = a;
  const std::vector<int> cols = {1, 4, 6};
  apply_panel_update(a, cols, Matrix::identity(3));
  EXPECT_EQ(a, orig);
}

TEST(ApplyPanelUpdate, ThreadedBitwiseEqualsSerial) {
  Rng rng(52);
  Matrix a1 = random_matrix(5000, 16, rng);
  Matrix a2 = a1;
  std::vector<int> cols(16);
  std::iota(cols.begin(), cols.end(), 0);
  Matrix w(16, 16);
  for (double& v : w.data()) v = rng.normal();
  ThreadPool pool(4);
  const auto s1 = apply_panel_update(a1, cols, w, nullptr);
  const auto s2 = apply_panel_update(a2, cols, w, &pool);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(s1, s2);
}

// --- Dispatch routing: shared-pool gate, fallback pool, stats ------------

// Big enough to clear the internal parallel-flops threshold with several
// C tiles, so dispatch genuinely decides between routes.
Matrix big_lhs() {
  Rng rng(61);
  return random_matrix(256, 128, rng);
}
Matrix big_rhs() {
  Rng rng(62);
  return random_matrix(128, 192, rng);
}

TEST(GemmDispatch, GateHeldRoutesToRegisteredFallbackPool) {
  const Matrix a = big_lhs();
  const Matrix b = big_rhs();
  const Matrix ref = gemm(a, b, nullptr);
  gemm_dispatch_stats_reset();
  detail::ScopedGemmGateHold hold;  // simulate a sibling shard owning the gate
  ThreadPool fb(2);
  Matrix c;
  {
    ScopedGemmFallbackPool reg(fb);
    c = gemm(a, b, gemm_pool());
  }
  const GemmDispatchStats s = gemm_dispatch_stats();
  EXPECT_GE(s.fallback, 1u);  // rescued, not degraded
  EXPECT_EQ(s.serial, 0u);
  EXPECT_EQ(c, ref);  // every route is bitwise-identical
}

TEST(GemmDispatch, GateHeldWithoutFallbackDegradesToSerial) {
  const Matrix a = big_lhs();
  const Matrix b = big_rhs();
  const Matrix ref = gemm(a, b, nullptr);
  gemm_dispatch_stats_reset();
  detail::ScopedGemmGateHold hold;
  const Matrix c = gemm(a, b, gemm_pool());
  const GemmDispatchStats s = gemm_dispatch_stats();
  EXPECT_GE(s.serial, 1u);
  EXPECT_EQ(s.fallback, 0u);
  EXPECT_EQ(c, ref);
}

TEST(GemmDispatch, CallerOwnedPoolBypassesGate) {
  const Matrix a = big_lhs();
  const Matrix b = big_rhs();
  const Matrix ref = gemm(a, b, nullptr);
  gemm_dispatch_stats_reset();
  detail::ScopedGemmGateHold hold;  // gate held: only a bypass can go pooled
  ThreadPool own(2);
  const Matrix c = gemm(a, b, &own);
  const GemmDispatchStats s = gemm_dispatch_stats();
  EXPECT_GE(s.pooled, 1u);
  EXPECT_EQ(s.serial, 0u);
  EXPECT_EQ(c, ref);
}

TEST(GemmDispatch, FallbackRegistrationNestsAndRestores) {
  const Matrix a = big_lhs();
  const Matrix b = big_rhs();
  detail::ScopedGemmGateHold hold;
  ThreadPool outer(2);
  ThreadPool inner(2);
  gemm_dispatch_stats_reset();
  {
    ScopedGemmFallbackPool reg_outer(outer);
    {
      ScopedGemmFallbackPool reg_inner(inner);
      (void)gemm(a, b, gemm_pool());
    }
    (void)gemm(a, b, gemm_pool());  // outer registration restored
  }
  EXPECT_EQ(gemm_dispatch_stats().fallback, 2u);
  (void)gemm(a, b, gemm_pool());  // no registration left
  EXPECT_EQ(gemm_dispatch_stats().serial, 1u);
}

TEST(GemmDispatch, SmallWorkCountsInline) {
  Rng rng(63);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  gemm_dispatch_stats_reset();
  (void)gemm(a, b, gemm_pool());
  EXPECT_GE(gemm_dispatch_stats().inline_small, 1u);
  EXPECT_EQ(gemm_dispatch_stats().pooled, 0u);
}

TEST(Gemm, OrthonormalityDefectAgreesWithDefinition) {
  Rng rng(53);
  const Matrix q = random_orthonormal(120, 30, rng);
  EXPECT_LT(orthonormality_defect(q), 1e-13);
  const Matrix a = random_matrix(40, 10, rng);
  const Matrix g = a.transposed() * a;
  const double direct = (g - Matrix::identity(10)).frobenius_norm();
  EXPECT_NEAR(orthonormality_defect(a), direct, 1e-10 * (1.0 + direct));
}

}  // namespace
}  // namespace treesvd
