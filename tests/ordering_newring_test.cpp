// New ring ordering (Section 4): the paper's stated properties, verified.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/new_ring.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

TEST(NewRing, TakesNMinusOneSteps) {
  EXPECT_EQ(NewRingOrdering().sweep(16).steps(), 15);
  EXPECT_EQ(NewRingOrdering().sweep(64).steps(), 63);
}

TEST(NewRing, MessagesTravelInOneDirectionOnly) {
  // "One important feature of the ordering is that the messages travel
  // between processors in only one direction throughout the computation."
  for (int n : {8, 16, 32, 64, 128, 256}) {
    const Sweep s = NewRingOrdering().sweep(n);
    EXPECT_TRUE(unidirectional_ring_moves(s)) << "n=" << n;
  }
}

TEST(NewRing, IndexOneNeverMoves) {
  const Sweep s = NewRingOrdering().sweep(32);
  for (int t = 0; t <= s.steps(); ++t) {
    const auto lay = s.layout(t);
    const bool at_leaf0 = lay[0] == 0 || lay[1] == 0;
    EXPECT_TRUE(at_leaf0) << "step " << t;
  }
}

TEST(NewRing, AfterOneSweepOneTwoFixedRestReversed) {
  // "After a sweep the positions of indices 1 and 2 are unchanged, while the
  // order of the indices numbered from 3 to n is reversed."
  for (int n : {8, 16, 64}) {
    const Sweep s = NewRingOrdering().sweep(n);
    const auto fin = s.final_layout();
    EXPECT_EQ(fin[0], 0);
    EXPECT_EQ(fin[1], 1);
    for (int slot = 2; slot < n; ++slot)
      EXPECT_EQ(fin[static_cast<std::size_t>(slot)], n + 1 - slot) << "n=" << n;
  }
}

TEST(NewRing, OriginalOrderAfterTwoSweeps) {
  const NewRingOrdering nr;
  for (int n : {4, 8, 16, 32, 128}) {
    std::vector<int> layout(static_cast<std::size_t>(n));
    std::iota(layout.begin(), layout.end(), 0);
    for (int k = 0; k < 2; ++k) {
      const Sweep s = nr.sweep_from(layout, k);
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
    }
    for (int i = 0; i < n; ++i) EXPECT_EQ(layout[static_cast<std::size_t>(i)], i) << "n=" << n;
  }
}

TEST(NewRing, MoveCountProfileMatchesThePaper) {
  // Index 1 never moves; index 2 moves once every two steps (n/2 moves per
  // sweep); indices 2k+1, 2k+2 move exactly 2k times.
  for (int n : {8, 16, 32, 64}) {
    const Sweep s = NewRingOrdering().sweep(n);
    const auto moves = moves_per_index(s);
    EXPECT_EQ(moves[0], 0u) << "n=" << n;
    EXPECT_EQ(moves[1], static_cast<std::size_t>(n / 2)) << "n=" << n;
    for (int k = 1; 2 * k + 1 < n; ++k) {
      EXPECT_EQ(moves[static_cast<std::size_t>(2 * k)], static_cast<std::size_t>(2 * k))
          << "index " << 2 * k + 1 << " n=" << n;
      EXPECT_EQ(moves[static_cast<std::size_t>(2 * k + 1)], static_cast<std::size_t>(2 * k))
          << "index " << 2 * k + 2 << " n=" << n;
    }
  }
}

TEST(NewRing, AllMoveCountsEvenForEvenLeafCount) {
  // Needed by the hybrid ordering: every index is shifted an even number of
  // times when the ring has an even number of processors (n = 0 mod 4).
  for (int n : {8, 16, 32, 64, 128}) {
    const Sweep s = NewRingOrdering().sweep(n);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i)
      EXPECT_EQ(moves_per_index(s)[i] % 2, 0u) << "n=" << n << " index " << i + 1;
  }
}

TEST(NewRing, EachLeafForwardsExactlyOneColumnPerTransition) {
  const int n = 32;
  const Sweep s = NewRingOrdering().sweep(n);
  for (int t = 0; t < s.steps(); ++t) {
    std::vector<int> sends(static_cast<std::size_t>(n / 2), 0);
    for (const ColumnMove& mv : s.moves(t)) {
      if (mv.from_slot / 2 == mv.to_slot / 2) continue;
      ++sends[static_cast<std::size_t>(mv.from_slot / 2)];
    }
    for (int leaf = 0; leaf < n / 2; ++leaf)
      EXPECT_EQ(sends[static_cast<std::size_t>(leaf)], 1) << "step " << t << " leaf " << leaf;
  }
}

TEST(NewRing, EquivalentToRoundRobinByRelabelling) {
  // Definition 1 of the paper, plus the explicit fold construction.
  for (int n : {8, 16, 32}) {
    const Sweep nr = NewRingOrdering().sweep(n);
    const Sweep rr = RoundRobinOrdering().sweep(n);
    const auto lam = find_equivalence_relabelling(nr, rr);
    ASSERT_TRUE(lam.has_value()) << "n=" << n;
    // The relabelling must be a permutation.
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (int v : *lam) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = 1;
    }
  }
}

TEST(NewRing, OrientationLargerIndexOnTopExceptPairsWithOne) {
  // "The number on the second row is smaller than the one on the first row of
  // the same index pair, except for the pairs containing index 1."
  const Sweep s = NewRingOrdering().sweep(16);
  for (int t = 0; t < s.steps(); ++t) {
    for (const IndexPair& p : s.pairs(t)) {
      if (p.even == 0 || p.odd == 0) {
        EXPECT_EQ(p.even, 0) << "pairs containing index 1 keep it on the first row";
      } else {
        EXPECT_GT(p.even, p.odd) << "step " << t;
      }
    }
  }
}

TEST(ModifiedRing, SameScheduleOppositeOrientation) {
  const Sweep s = ModifiedRingOrdering().sweep(16);
  for (int t = 0; t < s.steps(); ++t)
    for (const IndexPair& p : s.pairs(t)) EXPECT_LT(p.even, p.odd) << "step " << t;
  EXPECT_TRUE(unidirectional_ring_moves(s));
  EXPECT_TRUE(validate_sweep(s).valid);
}

TEST(ModifiedRing, SamePairSetsAsNewRing) {
  const Sweep a = NewRingOrdering().sweep(16);
  const Sweep b = ModifiedRingOrdering().sweep(16);
  for (int t = 0; t < a.steps(); ++t) {
    std::set<std::pair<int, int>> pa;
    std::set<std::pair<int, int>> pb;
    for (const auto& p : a.pairs(t)) pa.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    for (const auto& p : b.pairs(t)) pb.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    EXPECT_EQ(pa, pb) << "step " << t;
  }
}

TEST(NewRing, SpecialCaseN4) {
  const Sweep s = NewRingOrdering().sweep(4);
  EXPECT_TRUE(validate_sweep(s).valid);
  EXPECT_EQ(s.steps(), 3);
  const auto fin = s.final_layout();
  EXPECT_EQ(std::vector<int>(fin.begin(), fin.end()), (std::vector<int>{0, 1, 3, 2}));
}

}  // namespace
}  // namespace treesvd
