// Failure injection: every public entry point must reject malformed input
// with std::invalid_argument (TREESVD_REQUIRE), never crash or silently
// accept it.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "treesvd.hpp"

namespace treesvd {
namespace {

TEST(FailureInjection, SweepConstructorRejectsBadLayouts) {
  // Not a permutation.
  EXPECT_THROW(Sweep({{0, 1, 2, 2}, {0, 1, 2, 3}}, {}), std::invalid_argument);
  // Out-of-range entry.
  EXPECT_THROW(Sweep({{0, 1, 2, 7}, {0, 1, 2, 3}}, {}), std::invalid_argument);
  // Ragged layouts.
  EXPECT_THROW(Sweep({{0, 1, 2, 3}, {0, 1}}, {}), std::invalid_argument);
  // Too few layouts.
  EXPECT_THROW(Sweep({{0, 1, 2, 3}}, {}), std::invalid_argument);
  // Odd number of indices.
  EXPECT_THROW(Sweep({{0, 1, 2}, {0, 1, 2}}, {}), std::invalid_argument);
  // Wrong activity mask shape.
  EXPECT_THROW(Sweep({{0, 1, 2, 3}, {0, 1, 2, 3}}, {{1, 1, 1}}), std::invalid_argument);
  EXPECT_THROW(Sweep({{0, 1, 2, 3}, {0, 1, 2, 3}}, {{1, 1}, {1, 1}}), std::invalid_argument);
}

TEST(FailureInjection, SweepAccessorsRangeCheck) {
  const Sweep s = RoundRobinOrdering().sweep(8);
  EXPECT_THROW(s.layout(-1), std::invalid_argument);
  EXPECT_THROW(s.layout(s.steps() + 1), std::invalid_argument);
  EXPECT_THROW(s.pairs(s.steps()), std::invalid_argument);
  EXPECT_THROW(s.moves(s.steps()), std::invalid_argument);
  EXPECT_THROW(s.leaf_active(0, 99), std::invalid_argument);
}

TEST(FailureInjection, OrderingSizeChecks) {
  EXPECT_THROW(RoundRobinOrdering().sweep(3), std::invalid_argument);
  EXPECT_THROW(FatTreeOrdering().sweep(12), std::invalid_argument);
  EXPECT_THROW(HybridOrdering(4).sweep(12), std::invalid_argument);
  std::vector<int> layout = {0, 1, 2};
  EXPECT_THROW(RoundRobinOrdering().sweep_from(layout), std::invalid_argument);
}

TEST(FailureInjection, SvdEnginesRejectWideAndTiny) {
  Rng rng(1);
  const Matrix wide = random_gaussian(3, 6, rng);
  const Matrix tiny = random_gaussian(5, 1, rng);
  const auto ord = make_ordering("round-robin");
  EXPECT_THROW(one_sided_jacobi(wide, *ord), std::invalid_argument);
  EXPECT_THROW(one_sided_jacobi_threaded(wide, *ord), std::invalid_argument);
  EXPECT_THROW(cyclic_jacobi(wide), std::invalid_argument);
  EXPECT_THROW(spmd_jacobi(wide, *ord), std::invalid_argument);
  EXPECT_THROW(qr_preconditioned_jacobi(wide, *ord), std::invalid_argument);
  EXPECT_THROW(block_one_sided_jacobi(wide, *ord), std::invalid_argument);
  EXPECT_THROW(one_sided_jacobi(tiny, *ord), std::invalid_argument);
}

TEST(FailureInjection, DistributedMachineChecks) {
  Rng rng(2);
  const Matrix a = random_gaussian(16, 8, rng);
  const FatTreeTopology wrong(2, CapacityProfile::kPerfect);
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), wrong),
               std::invalid_argument);
}

TEST(FailureInjection, NetworkChecks) {
  EXPECT_THROW(FatTreeTopology(5, CapacityProfile::kCm5), std::invalid_argument);
  const FatTreeTopology t(8, CapacityProfile::kPerfect);
  EXPECT_THROW(t.capacity(0), std::invalid_argument);
  EXPECT_THROW(t.capacity(4), std::invalid_argument);
  EXPECT_THROW(t.edges_at_level(0), std::invalid_argument);
  EXPECT_THROW(t.edge_index(8, 1), std::invalid_argument);
  TrafficStep step(t);
  EXPECT_THROW(step.add({-1, 0, 1.0}), std::invalid_argument);
  EXPECT_THROW(step.add({0, 9, 1.0}), std::invalid_argument);
}

TEST(FailureInjection, EigenChecks) {
  EXPECT_THROW(jacobi_symmetric_eigen(Matrix(0, 0), *make_ordering("round-robin")),
               std::invalid_argument);
  EXPECT_THROW(jacobi_symmetric_eigen(Matrix(1, 1), *make_ordering("round-robin")),
               std::invalid_argument);
  const Matrix asym = Matrix::from_rows({{1, 2}, {0, 1}});
  EXPECT_THROW(jacobi_symmetric_eigen(asym, *make_ordering("round-robin")),
               std::invalid_argument);
}

TEST(FailureInjection, QrChecks) {
  EXPECT_THROW(HouseholderQr(Matrix(2, 4)), std::invalid_argument);
  Rng rng(3);
  const Matrix a = random_gaussian(6, 3, rng);
  const HouseholderQr qr(a);
  Matrix wrong_rows(5, 2);
  EXPECT_THROW(qr.apply_q(wrong_rows), std::invalid_argument);
  EXPECT_THROW(qr.apply_qt(wrong_rows), std::invalid_argument);
}

TEST(FailureInjection, MachineModelChecks) {
  const auto ord = make_ordering("round-robin");
  const FatTreeTopology t(4, CapacityProfile::kPerfect);
  EXPECT_THROW(model_run(*ord, t, 16, CostParams{}, 1), std::invalid_argument);  // 16/2 != 4
  EXPECT_THROW(model_run(*ord, t, 7, CostParams{}, 1), std::invalid_argument);   // unsupported n
}

TEST(FailureInjection, MessagePassingChecks) {
  EXPECT_THROW(mp::World(0), std::invalid_argument);
  mp::World world(2);
  EXPECT_THROW(world.run([](mp::Context& ctx) {
                 if (ctx.rank() == 0) ctx.send(5, 0, {1.0});  // bad destination
               }),
               std::invalid_argument);
}

TEST(FailureInjection, FaultPlanValidation) {
  // Message faults without the reliable transport are rejected up front —
  // nothing would recover the injected losses.
  {
    mp::World world(2);
    mp::FaultPlan plan;
    plan.enabled = true;
    plan.drop_prob = 0.1;
    EXPECT_THROW(world.set_fault_plan(plan), std::invalid_argument);
  }
  // Probabilities must be sane individually and as a partition of [0, 1).
  {
    mp::World world(2);
    world.set_reliable({.enabled = true});
    mp::FaultPlan plan;
    plan.enabled = true;
    plan.drop_prob = -0.1;
    EXPECT_THROW(world.set_fault_plan(plan), std::invalid_argument);
    plan.drop_prob = 0.7;
    plan.duplicate_prob = 0.5;  // sums past 1
    EXPECT_THROW(world.set_fault_plan(plan), std::invalid_argument);
  }
  // Rank-fault targets must exist in this world.
  {
    mp::World world(2);
    mp::FaultPlan plan;
    plan.enabled = true;
    plan.kill_rank = 7;
    EXPECT_THROW(world.set_fault_plan(plan), std::invalid_argument);
    plan.kill_rank = -1;
    plan.stall_rank = 2;
    EXPECT_THROW(world.set_fault_plan(plan), std::invalid_argument);
  }
  // Reliable-transport knobs are validated too.
  {
    mp::World world(2);
    EXPECT_THROW(world.set_reliable({.enabled = true, .max_retries = 0}), std::invalid_argument);
    EXPECT_THROW(world.set_reliable({.enabled = true, .deadline = 0.0}), std::invalid_argument);
    EXPECT_THROW(world.set_reliable({.enabled = true, .backoff = 0.5}), std::invalid_argument);
  }
}

TEST(FailureInjection, RecoveryGuardChecks) {
  Rng rng(5);
  Matrix a = random_gaussian(8, 4, rng);
  a(2, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(require_finite_columns(a, "engine"), std::invalid_argument);
  const std::vector<double> poisoned = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(require_finite_payload(poisoned, 3, "engine"), std::invalid_argument);
  EXPECT_FALSE(cached_norm_plausible(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(cached_norm_plausible(-1.0));
  EXPECT_TRUE(cached_norm_plausible(0.0));
}

TEST(FailureInjection, GeneratorChecks) {
  Rng rng(4);
  EXPECT_THROW(with_spectrum(10, 4, {1.0, 2.0}, rng), std::invalid_argument);
  EXPECT_THROW(geometric_spectrum(5, 0.1), std::invalid_argument);
  EXPECT_THROW(rank_deficient(10, 4, 9, rng), std::invalid_argument);
}

}  // namespace
}  // namespace treesvd
