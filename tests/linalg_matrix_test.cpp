// Tests for the Matrix type and its helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/generators.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

TEST(Matrix, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, FromRowsLaysOutCorrectly) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, ColumnViewIsContiguous) {
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto c1 = m.col(1);
  EXPECT_EQ(c1.size(), 2u);
  EXPECT_EQ(c1[0], 2.0);
  EXPECT_EQ(c1[1], 4.0);
  c1[0] = 9.0;
  EXPECT_EQ(m(0, 1), 9.0);
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 2), std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix i2 = Matrix::identity(2);
  EXPECT_EQ(a * i2, a);
  const Matrix b = Matrix::from_rows({{7, 8}, {9, 10}});
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 1 * 7 + 2 * 9);
  EXPECT_EQ(c(2, 1), 5 * 8 + 6 * 10);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(3);
  const Matrix a = random_gaussian(5, 3, rng);
  const Matrix att = a.transposed().transposed();
  EXPECT_EQ(a, att);
  EXPECT_EQ(a.transposed()(2, 4), a(4, 2));
}

TEST(Matrix, AddSubtract) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  EXPECT_EQ((a + b)(1, 1), 12.0);
  EXPECT_EQ((b - a)(0, 0), 4.0);
  Matrix c(1, 2);
  EXPECT_THROW(a + c, std::invalid_argument);
  EXPECT_THROW(a - c, std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix(4, 4).frobenius_norm(), 0.0);
}

TEST(Matrix, FrobeniusNormExtremeScalesDoNotOverflow) {
  Matrix a(2, 1);
  a(0, 0) = 1e200;
  a(1, 0) = 1e200;
  EXPECT_TRUE(std::isfinite(a.frobenius_norm()));
  EXPECT_NEAR(a.frobenius_norm() / 1e200, std::sqrt(2.0), 1e-12);
}

TEST(Matrix, MaxAbs) {
  const Matrix a = Matrix::from_rows({{-7, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, OrthonormalityDefectOfIdentityIsZero) {
  EXPECT_NEAR(orthonormality_defect(Matrix::identity(6)), 0.0, 1e-15);
}

TEST(Matrix, ReconstructionErrorExactFactorisation) {
  // A = U diag(s) V^T with U = V = I.
  const Matrix u = Matrix::identity(3);
  const std::vector<double> s = {3.0, 2.0, 1.0};
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = s[static_cast<std::size_t>(i)];
  EXPECT_NEAR(reconstruction_error(a, u, s, u), 0.0, 1e-15);
}

TEST(Matrix, ReconstructionErrorDimensionCheck) {
  const Matrix u = Matrix::identity(3);
  const std::vector<double> s = {1.0, 2.0};
  EXPECT_THROW(reconstruction_error(u, u, s, u), std::invalid_argument);
}

}  // namespace
}  // namespace treesvd
