// Fat-tree topology and traffic model tests.
#include <gtest/gtest.h>

#include "network/topology.hpp"
#include "network/traffic.hpp"

namespace treesvd {
namespace {

TEST(Topology, LevelsFromLeafCount) {
  EXPECT_EQ(FatTreeTopology(1, CapacityProfile::kPerfect).levels(), 0);
  EXPECT_EQ(FatTreeTopology(2, CapacityProfile::kPerfect).levels(), 1);
  EXPECT_EQ(FatTreeTopology(16, CapacityProfile::kPerfect).levels(), 4);
  EXPECT_EQ(FatTreeTopology(64, CapacityProfile::kPerfect).levels(), 6);
}

TEST(Topology, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FatTreeTopology(12, CapacityProfile::kPerfect), std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(0, CapacityProfile::kPerfect), std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(8, CapacityProfile::kPerfect, 0.0), std::invalid_argument);
}

TEST(Topology, PerfectCapacityDoublesPerLevel) {
  const FatTreeTopology t(16, CapacityProfile::kPerfect, 2.0);
  EXPECT_DOUBLE_EQ(t.capacity(1), 2.0);
  EXPECT_DOUBLE_EQ(t.capacity(2), 4.0);
  EXPECT_DOUBLE_EQ(t.capacity(3), 8.0);
  EXPECT_DOUBLE_EQ(t.capacity(4), 16.0);
}

TEST(Topology, ConstantCapacityIsFlat) {
  const FatTreeTopology t(16, CapacityProfile::kConstant, 3.0);
  for (int l = 1; l <= 4; ++l) EXPECT_DOUBLE_EQ(t.capacity(l), 3.0);
}

TEST(Topology, Cm5CapacityDoublesEverySecondLevel) {
  // Full at the two bottom levels, skinny above (Section 2).
  const FatTreeTopology t(64, CapacityProfile::kCm5, 1.0);
  EXPECT_DOUBLE_EQ(t.capacity(1), 1.0);
  EXPECT_DOUBLE_EQ(t.capacity(2), 2.0);
  EXPECT_DOUBLE_EQ(t.capacity(3), 2.0);
  EXPECT_DOUBLE_EQ(t.capacity(4), 4.0);
  EXPECT_DOUBLE_EQ(t.capacity(5), 4.0);
  EXPECT_DOUBLE_EQ(t.capacity(6), 8.0);
  // Strictly skinnier than perfect above level 2.
  const FatTreeTopology p(64, CapacityProfile::kPerfect, 1.0);
  for (int l = 3; l <= 6; ++l) EXPECT_LT(t.capacity(l), p.capacity(l));
}

TEST(Topology, RouteLevelIsLcaHeight) {
  const FatTreeTopology t(8, CapacityProfile::kPerfect);
  EXPECT_EQ(t.route_level(3, 3), 0);
  EXPECT_EQ(t.route_level(0, 1), 1);
  EXPECT_EQ(t.route_level(0, 2), 2);
  EXPECT_EQ(t.route_level(0, 3), 2);
  EXPECT_EQ(t.route_level(0, 4), 3);
  EXPECT_EQ(t.route_level(3, 4), 3);
  EXPECT_THROW(t.route_level(0, 8), std::invalid_argument);
}

TEST(Topology, EdgeCountsHalvePerLevel) {
  const FatTreeTopology t(16, CapacityProfile::kPerfect);
  EXPECT_EQ(t.edges_at_level(1), 16);
  EXPECT_EQ(t.edges_at_level(2), 8);
  EXPECT_EQ(t.edges_at_level(4), 2);
}

TEST(Topology, EdgeIndexGroupsLeaves) {
  const FatTreeTopology t(8, CapacityProfile::kPerfect);
  EXPECT_EQ(t.edge_index(5, 1), 5);
  EXPECT_EQ(t.edge_index(5, 2), 2);
  EXPECT_EQ(t.edge_index(5, 3), 1);
}

TEST(Traffic, SameLeafMessagesAreFree) {
  const FatTreeTopology t(8, CapacityProfile::kPerfect);
  TrafficStep step(t);
  step.add({3, 3, 100.0});
  const StepTraffic st = step.finish(1.0);
  EXPECT_EQ(st.messages, 0u);
  EXPECT_DOUBLE_EQ(st.time, 0.0);
  EXPECT_DOUBLE_EQ(st.total_words, 0.0);
}

TEST(Traffic, SingleMessageTimeIsSerializationPlusLatency) {
  const FatTreeTopology t(8, CapacityProfile::kConstant, 2.0);
  TrafficStep step(t);
  step.add({0, 7, 10.0});  // crosses the root: level 3
  const StepTraffic st = step.finish(1.5);
  EXPECT_EQ(st.max_level, 3);
  EXPECT_DOUBLE_EQ(st.time, 10.0 / 2.0 + 1.5 * 3);
  EXPECT_EQ(st.messages, 1u);
  EXPECT_DOUBLE_EQ(st.max_channel_load, 10.0);
}

TEST(Traffic, ContentionCountsStreamsPerChannel) {
  const FatTreeTopology t(8, CapacityProfile::kConstant, 1.0);
  TrafficStep step(t);
  // Two messages leaving leaf 0: both share leaf 0's level-1 up channel.
  step.add({0, 1, 5.0});
  step.add({0, 2, 5.0});
  const StepTraffic st = step.finish(0.0);
  EXPECT_DOUBLE_EQ(st.max_contention, 2.0);
  EXPECT_DOUBLE_EQ(st.max_channel_load, 10.0);
  EXPECT_DOUBLE_EQ(st.time, 10.0);
}

TEST(Traffic, FatChannelsAbsorbParallelStreams) {
  const FatTreeTopology t(8, CapacityProfile::kPerfect, 1.0);
  TrafficStep step(t);
  // Two messages from different leaves of the left half to the right half:
  // they share the root edge (capacity 4), so no contention.
  step.add({0, 4, 8.0});
  step.add({2, 6, 8.0});
  const StepTraffic st = step.finish(0.0);
  EXPECT_LE(st.max_contention, 1.0);
  // Root channel above leaf 0/2 carries... each message goes up its own
  // level-1/2 edges; at level 3 both use the single left up edge: 16 words
  // at capacity 4 -> 4 time units; level 1: 8 words at capacity 1 -> 8.
  EXPECT_DOUBLE_EQ(st.time, 8.0);
}

TEST(Traffic, LevelPeakLoad) {
  const FatTreeTopology t(4, CapacityProfile::kPerfect);
  TrafficStep step(t);
  step.add({0, 3, 7.0});
  EXPECT_DOUBLE_EQ(step.level_peak_load(1), 7.0);
  EXPECT_DOUBLE_EQ(step.level_peak_load(2), 7.0);
  EXPECT_THROW(step.level_peak_load(3), std::invalid_argument);
}

TEST(Traffic, RejectsNegativeWords) {
  const FatTreeTopology t(4, CapacityProfile::kPerfect);
  TrafficStep step(t);
  EXPECT_THROW(step.add({0, 1, -1.0}), std::invalid_argument);
}

TEST(Topology, ProfileNames) {
  EXPECT_EQ(to_string(CapacityProfile::kPerfect), "perfect-fat-tree");
  EXPECT_EQ(to_string(CapacityProfile::kConstant), "binary-tree");
  EXPECT_EQ(to_string(CapacityProfile::kCm5), "cm5-skinny");
}

}  // namespace
}  // namespace treesvd
