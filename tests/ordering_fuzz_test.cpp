// Randomized sweeps: seeded random problem sizes and random starting layouts
// across all orderings — catches size-dependent generator bugs the fixed-size
// property suite might miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/registry.hpp"
#include "core/validate.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

std::vector<int> random_even_sizes(Rng& rng, int count, int lo, int hi) {
  std::vector<int> out;
  for (int i = 0; i < count; ++i) {
    const int span = (hi - lo) / 2;
    out.push_back(lo + 2 * static_cast<int>(rng.below(static_cast<std::uint64_t>(span))));
  }
  return out;
}

TEST(OrderingFuzz, RandomSizesStayValid) {
  Rng rng(0xF00D);
  for (const auto& name : ordering_names({2, 4, 6, 8})) {
    const auto ord = make_ordering(name);
    int tested = 0;
    for (int n : random_even_sizes(rng, 40, 4, 200)) {
      if (!ord->supports(n)) continue;
      const SweepValidation v = validate_sweep(ord->sweep(n));
      ASSERT_TRUE(v.valid) << name << " n=" << n << ": " << v.error;
      ++tested;
    }
    if (tested == 0) {
      // Power-of-two-constrained orderings rarely match random evens; fall
      // back to the smallest supported size so every ordering is exercised.
      for (int n = 4; n <= 256; ++n) {
        if (!ord->supports(n)) continue;
        ASSERT_TRUE(validate_sweep(ord->sweep(n)).valid) << name << " n=" << n;
        ++tested;
        break;
      }
    }
    EXPECT_GT(tested, 0) << name << " has no supported size at all";
  }
}

TEST(OrderingFuzz, RandomStartingLayoutsTransportCorrectly) {
  Rng rng(0xBEEF);
  for (const auto& name : ordering_names({4})) {
    const auto ord = make_ordering(name);
    const int n = 16;
    if (!ord->supports(n)) continue;
    for (int rep = 0; rep < 10; ++rep) {
      // Random permutation start.
      std::vector<int> layout(static_cast<std::size_t>(n));
      std::iota(layout.begin(), layout.end(), 0);
      for (std::size_t i = layout.size(); i > 1; --i)
        std::swap(layout[i - 1], layout[rng.below(i)]);
      const Sweep s = ord->sweep_from(layout, static_cast<int>(rng.below(4)));
      const SweepValidation v = validate_sweep(s);
      ASSERT_TRUE(v.valid) << name << " rep=" << rep << ": " << v.error;
      // Start layout must be preserved at step 0 up to intra-leaf order.
      const auto lay0 = s.layout(0);
      for (int leaf = 0; leaf < n / 2; ++leaf) {
        const std::pair<int, int> want = std::minmax(layout[static_cast<std::size_t>(2 * leaf)],
                                                     layout[static_cast<std::size_t>(2 * leaf + 1)]);
        const std::pair<int, int> got = std::minmax(lay0[static_cast<std::size_t>(2 * leaf)],
                                                    lay0[static_cast<std::size_t>(2 * leaf + 1)]);
        EXPECT_EQ(want, got) << name << " leaf " << leaf;
      }
    }
  }
}

TEST(OrderingFuzz, LongSweepChainsStayValidAndPeriodic) {
  // Eight consecutive sweeps: all valid, and the layout is periodic with
  // period 1 or 2 (every ordering in the library restores within two).
  Rng rng(0xCAFE);
  for (const auto& name : ordering_names({2})) {
    const auto ord = make_ordering(name);
    const int n = 32;
    if (!ord->supports(n)) continue;
    std::vector<int> layout(static_cast<std::size_t>(n));
    std::iota(layout.begin(), layout.end(), 0);
    std::vector<std::vector<int>> states = {layout};
    for (int k = 0; k < 8; ++k) {
      const Sweep s = ord->sweep_from(layout, k);
      ASSERT_TRUE(validate_sweep(s).valid) << name << " sweep " << k;
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
      states.push_back(layout);
    }
    EXPECT_EQ(states[0], states[2]) << name;
    EXPECT_EQ(states[2], states[4]) << name;
    EXPECT_EQ(states[4], states[8]) << name;
  }
}

}  // namespace
}  // namespace treesvd
