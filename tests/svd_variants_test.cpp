// Block one-sided Jacobi and the QR-preconditioned path.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/block_jacobi.hpp"
#include "svd/preconditioned.hpp"

namespace treesvd {
namespace {

using Param = std::tuple<std::string, int>;  // ordering, block width

class BlockJacobi : public ::testing::TestWithParam<Param> {};

TEST_P(BlockJacobi, FactorisationAccurateAndSorted) {
  const auto& [name, width] = GetParam();
  Rng rng(808);
  const Matrix a = random_gaussian(64, 32, rng);
  BlockJacobiOptions opt;
  opt.block_width = width;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering(name), opt);
  ASSERT_TRUE(r.converged) << name << " b=" << width;
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
  EXPECT_LT(orthonormality_defect(r.v), 1e-11);
  for (std::size_t k = 1; k < r.sigma.size(); ++k)
    EXPECT_GE(r.sigma[k - 1], r.sigma[k] - 1e-10);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsTimesWidths, BlockJacobi,
    ::testing::Combine(::testing::Values("round-robin", "fat-tree", "new-ring", "hybrid-g2"),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_b" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(BlockJacobiExtra, FewerOuterSweepsThanElementwise) {
  Rng rng(809);
  const Matrix a = random_gaussian(96, 48, rng);
  const auto ord = make_ordering("round-robin");
  BlockJacobiOptions opt;
  opt.block_width = 8;
  const SvdResult blocked = block_one_sided_jacobi(a, *ord, opt);
  const SvdResult plain = one_sided_jacobi(a, *ord);
  ASSERT_TRUE(blocked.converged);
  ASSERT_TRUE(plain.converged);
  EXPECT_LT(blocked.sweeps, plain.sweeps);
}

TEST(BlockJacobiExtra, WidthOneMatchesElementwiseBehaviour) {
  Rng rng(810);
  const Matrix a = random_gaussian(24, 16, rng);
  BlockJacobiOptions opt;
  opt.block_width = 1;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-8);
}

TEST(BlockJacobiExtra, NonDividingWidthPadsCleanly) {
  Rng rng(811);
  const Matrix a = random_gaussian(30, 18, rng);  // 18 cols, width 4 -> 5 blocks -> pad
  BlockJacobiOptions opt;
  opt.block_width = 4;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.sigma.size(), 18u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
}

TEST(BlockJacobiExtra, RankDeficient) {
  Rng rng(812);
  const Matrix a = rank_deficient(40, 16, 6, rng);
  BlockJacobiOptions opt;
  opt.block_width = 4;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("fat-tree"), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rank(1e-9), 6u);
}

TEST(BlockJacobiExtra, RejectsBadOptions) {
  Rng rng(813);
  const Matrix a = random_gaussian(8, 4, rng);
  BlockJacobiOptions opt;
  opt.block_width = 0;
  EXPECT_THROW(block_one_sided_jacobi(a, *make_ordering("round-robin"), opt),
               std::invalid_argument);
}

TEST(Preconditioned, MatchesDirectJacobi) {
  Rng rng(814);
  const Matrix a = random_gaussian(200, 24, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult direct = one_sided_jacobi(a, *ord);
  const SvdResult pre = qr_preconditioned_jacobi(a, *ord);
  ASSERT_TRUE(pre.converged);
  for (std::size_t k = 0; k < direct.sigma.size(); ++k)
    EXPECT_NEAR(pre.sigma[k], direct.sigma[k], 1e-9);
  EXPECT_LT(reconstruction_error(a, pre.u, pre.sigma, pre.v) / a.frobenius_norm(), 1e-12);
  EXPECT_LT(orthonormality_defect(pre.u), 1e-10);
}

TEST(Preconditioned, TallAndSkinny) {
  Rng rng(815);
  const Matrix a = with_spectrum(500, 12, geometric_spectrum(12, 1e5), rng);
  const SvdResult r = qr_preconditioned_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k)
    EXPECT_NEAR(r.sigma[k], sv[k], 1e-7 * sv[0]);
}

TEST(Preconditioned, RankDeficientTall) {
  Rng rng(816);
  const Matrix a = rank_deficient(120, 16, 4, rng);
  const SvdResult r = qr_preconditioned_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rank(1e-9), 4u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
}

}  // namespace
}  // namespace treesvd
