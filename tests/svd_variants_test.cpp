// Block one-sided Jacobi and the QR-preconditioned path.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/block_jacobi.hpp"
#include "svd/preconditioned.hpp"

namespace treesvd {
namespace {

using Param = std::tuple<std::string, int>;  // ordering, block width

class BlockJacobi : public ::testing::TestWithParam<Param> {};

TEST_P(BlockJacobi, FactorisationAccurateAndSorted) {
  const auto& [name, width] = GetParam();
  Rng rng(808);
  const Matrix a = random_gaussian(64, 32, rng);
  BlockJacobiOptions opt;
  opt.block_width = width;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering(name), opt);
  ASSERT_TRUE(r.converged) << name << " b=" << width;
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
  EXPECT_LT(orthonormality_defect(r.v), 1e-11);
  for (std::size_t k = 1; k < r.sigma.size(); ++k)
    EXPECT_GE(r.sigma[k - 1], r.sigma[k] - 1e-10);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsTimesWidths, BlockJacobi,
    ::testing::Combine(::testing::Values("round-robin", "fat-tree", "new-ring", "hybrid-g2"),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_b" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(BlockJacobiExtra, FewerOuterSweepsThanElementwise) {
  Rng rng(809);
  const Matrix a = random_gaussian(96, 48, rng);
  const auto ord = make_ordering("round-robin");
  BlockJacobiOptions opt;
  opt.block_width = 8;
  const SvdResult blocked = block_one_sided_jacobi(a, *ord, opt);
  const SvdResult plain = one_sided_jacobi(a, *ord);
  ASSERT_TRUE(blocked.converged);
  ASSERT_TRUE(plain.converged);
  EXPECT_LT(blocked.sweeps, plain.sweeps);
}

TEST(BlockJacobiExtra, WidthOneMatchesElementwiseBehaviour) {
  Rng rng(810);
  const Matrix a = random_gaussian(24, 16, rng);
  BlockJacobiOptions opt;
  opt.block_width = 1;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-8);
}

TEST(BlockJacobiExtra, NonDividingWidthPadsCleanly) {
  Rng rng(811);
  const Matrix a = random_gaussian(30, 18, rng);  // 18 cols, width 4 -> 5 blocks -> pad
  BlockJacobiOptions opt;
  opt.block_width = 4;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.sigma.size(), 18u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
}

TEST(BlockJacobiExtra, RankDeficient) {
  Rng rng(812);
  const Matrix a = rank_deficient(40, 16, 6, rng);
  BlockJacobiOptions opt;
  opt.block_width = 4;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("fat-tree"), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rank(1e-9), 6u);
}

TEST(BlockJacobiExtra, RejectsBadOptions) {
  Rng rng(813);
  const Matrix a = random_gaussian(8, 4, rng);
  BlockJacobiOptions opt;
  opt.block_width = 0;
  EXPECT_THROW(block_one_sided_jacobi(a, *make_ordering("round-robin"), opt),
               std::invalid_argument);
}

TEST(BlockJacobiGram, AgreesWithElementwiseAcrossAllOrderings) {
  // The Gram inner solver and the historical elementwise path must agree on
  // the factorisation to numerical tolerance on every registered ordering.
  Rng rng(820);
  const Matrix a = random_gaussian(96, 32, rng);
  const auto oracle = singular_values_oracle(a);
  for (const auto& name : ordering_names({2, 4})) {
    const auto ord = make_ordering(name);
    BlockJacobiOptions gram;
    gram.block_width = 4;
    gram.inner_mode = InnerMode::kGram;
    BlockJacobiOptions elem = gram;
    elem.inner_mode = InnerMode::kElementwise;
    const SvdResult rg = block_one_sided_jacobi(a, *ord, gram);
    const SvdResult re = block_one_sided_jacobi(a, *ord, elem);
    ASSERT_TRUE(rg.converged) << name;
    ASSERT_TRUE(re.converged) << name;
    const double smax = oracle[0];
    for (std::size_t k = 0; k < oracle.size(); ++k) {
      EXPECT_NEAR(rg.sigma[k], re.sigma[k], 1e-10 * smax) << name << " sigma[" << k << "]";
      EXPECT_NEAR(rg.sigma[k], oracle[k], 1e-8 * smax) << name << " sigma[" << k << "]";
    }
    // Same order of magnitude on the quality measures.
    const double dg = orthonormality_defect(rg.v);
    const double de = orthonormality_defect(re.v);
    EXPECT_LT(dg, 1e-11) << name;
    EXPECT_LT(de, 1e-11) << name;
    EXPECT_LT(reconstruction_error(a, rg.u, rg.sigma, rg.v) / a.frobenius_norm(), 1e-11) << name;
  }
}

TEST(BlockJacobiGram, CountersShowOneGramOnePairOfAppliesPerEncounter) {
  // The one-GEMM-per-encounter contract, via the kernel_stats counters: no
  // pair kernels run at all under kGram, every encounter builds exactly one
  // Gram matrix, and at most one blocked apply per panel (H and V) follows.
  Rng rng(821);
  const Matrix a = random_gaussian(80, 32, rng);
  BlockJacobiOptions opt;
  opt.block_width = 8;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  const KernelStats& ks = r.kernel_stats;
  EXPECT_EQ(ks.pairs, 0u);
  EXPECT_EQ(ks.dot_passes, 0u);
  EXPECT_EQ(ks.gram_passes, 0u);
  EXPECT_EQ(ks.rotate_passes, 0u);
  EXPECT_GT(ks.gram_builds, 0u);
  EXPECT_EQ(ks.accum_rotations, r.rotations);
  // compute_v: one H apply + one V apply per non-clean encounter, none for
  // clean ones — so an even count bounded by twice the builds.
  EXPECT_EQ(ks.blocked_applies % 2, 0u);
  EXPECT_LE(ks.blocked_applies, 2 * ks.gram_builds);
  EXPECT_GT(ks.blocked_applies, 0u);
  // Encounters per outer sweep are fixed by the ordering: nb/2 pairs per
  // step, nb-1 steps for round-robin over nb = 4 blocks.
  EXPECT_EQ(ks.gram_builds % 6, 0u);

  BlockJacobiOptions no_v = opt;
  no_v.compute_v = false;
  const SvdResult rn = block_one_sided_jacobi(a, *make_ordering("round-robin"), no_v);
  EXPECT_LE(rn.kernel_stats.blocked_applies, rn.kernel_stats.gram_builds);
}

TEST(BlockJacobiGram, ElementwiseCountersUnchangedFromPairKernelLayer) {
  // The retained elementwise path must still drive the cached pair kernel:
  // one dot pass per pair, no gram passes, and none of the Gram-path
  // counters may tick.
  Rng rng(822);
  const Matrix a = random_gaussian(48, 24, rng);
  BlockJacobiOptions opt;
  opt.block_width = 4;
  opt.inner_mode = InnerMode::kElementwise;
  const SvdResult r = block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.kernel_stats.pairs, 0u);
  EXPECT_EQ(r.kernel_stats.dot_passes, r.kernel_stats.pairs);
  EXPECT_EQ(r.kernel_stats.gram_builds, 0u);
  EXPECT_EQ(r.kernel_stats.accum_rotations, 0u);
  EXPECT_EQ(r.kernel_stats.blocked_applies, 0u);
}

TEST(BlockJacobiGram, CacheNormsOffStillAgrees) {
  Rng rng(823);
  const Matrix a = random_gaussian(64, 24, rng);
  BlockJacobiOptions with_cache;
  with_cache.block_width = 4;
  BlockJacobiOptions no_cache = with_cache;
  no_cache.cache_norms = false;
  const SvdResult rc = block_one_sided_jacobi(a, *make_ordering("fat-tree"), with_cache);
  const SvdResult ru = block_one_sided_jacobi(a, *make_ordering("fat-tree"), no_cache);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(ru.converged);
  for (std::size_t k = 0; k < rc.sigma.size(); ++k)
    EXPECT_NEAR(rc.sigma[k], ru.sigma[k], 1e-12 * rc.sigma[0]);
}

TEST(BlockJacobiBlockCount, NonPowerOfTwoAndPaddedWidthsConverge) {
  // Regression for the block-count search: widths that do not divide n and
  // orderings that only support particular counts (fat-tree: powers of two)
  // must land on a supported count within the documented bound and still
  // produce the right factorisation.
  Rng rng(824);
  for (const auto& [n, width] : std::vector<std::pair<std::size_t, int>>{
           {18, 4}, {18, 16}, {19, 5}, {10, 3}, {33, 8}}) {
    const Matrix a = random_gaussian(2 * n + 5, n, rng);
    const auto oracle = singular_values_oracle(a);
    for (const char* name : {"round-robin", "fat-tree", "new-ring", "hybrid-g2"}) {
      BlockJacobiOptions opt;
      opt.block_width = width;
      const SvdResult r = block_one_sided_jacobi(a, *make_ordering(name), opt);
      ASSERT_TRUE(r.converged) << name << " n=" << n << " b=" << width;
      ASSERT_EQ(r.sigma.size(), n);
      for (std::size_t k = 0; k < oracle.size(); ++k)
        EXPECT_NEAR(r.sigma[k], oracle[k], 1e-7 * (1.0 + oracle[0])) << name;
    }
  }
}

TEST(BlockJacobiBlockCount, UnsupportableCountThrowsWithPreciseRange) {
  // hybrid-g16 needs a block count divisible into 16 groups; with n=8, b=4
  // the search range [2, 8] holds no supported count. The error must name
  // the ordering, the searched range, and the offending parameters.
  Rng rng(825);
  const Matrix a = random_gaussian(16, 8, rng);
  BlockJacobiOptions opt;
  opt.block_width = 4;
  try {
    block_one_sided_jacobi(a, *make_ordering("hybrid-g16"), opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("supports no block count in [2, 8]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("block_width=4"), std::string::npos) << msg;
  }
}

TEST(Preconditioned, MatchesDirectJacobi) {
  Rng rng(814);
  const Matrix a = random_gaussian(200, 24, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult direct = one_sided_jacobi(a, *ord);
  const SvdResult pre = qr_preconditioned_jacobi(a, *ord);
  ASSERT_TRUE(pre.converged);
  for (std::size_t k = 0; k < direct.sigma.size(); ++k)
    EXPECT_NEAR(pre.sigma[k], direct.sigma[k], 1e-9);
  EXPECT_LT(reconstruction_error(a, pre.u, pre.sigma, pre.v) / a.frobenius_norm(), 1e-12);
  EXPECT_LT(orthonormality_defect(pre.u), 1e-10);
}

TEST(Preconditioned, TallAndSkinny) {
  Rng rng(815);
  const Matrix a = with_spectrum(500, 12, geometric_spectrum(12, 1e5), rng);
  const SvdResult r = qr_preconditioned_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k)
    EXPECT_NEAR(r.sigma[k], sv[k], 1e-7 * sv[0]);
}

TEST(Preconditioned, RankDeficientTall) {
  Rng rng(816);
  const Matrix a = rank_deficient(120, 16, 4, rng);
  const SvdResult r = qr_preconditioned_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rank(1e-9), 4u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
}

}  // namespace
}  // namespace treesvd
