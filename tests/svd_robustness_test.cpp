// Numerical robustness: extreme scales, duplicate columns, degenerate
// matrices — inputs that break naive Jacobi implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/generators.hpp"
#include "network/topology.hpp"
#include "sim/distributed.hpp"
#include "svd/block_jacobi.hpp"
#include "svd/jacobi.hpp"
#include "svd/kogbetliantz.hpp"
#include "svd/preconditioned.hpp"
#include "svd/spmd.hpp"

namespace treesvd {
namespace {

TEST(SvdRobustness, HugeUniformScale) {
  Rng rng(71);
  Matrix a = random_gaussian(16, 8, rng);
  for (auto& v : a.data()) v *= 1e100;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  for (double s : r.sigma) EXPECT_TRUE(std::isfinite(s));
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(SvdRobustness, TinyUniformScale) {
  Rng rng(72);
  Matrix a = random_gaussian(16, 8, rng);
  for (auto& v : a.data()) v *= 1e-100;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.sigma[0], 0.0);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(SvdRobustness, WildlyMixedColumnScales) {
  Rng rng(73);
  Matrix a = random_gaussian(20, 8, rng);
  for (std::size_t j = 0; j < 8; ++j) {
    const double scale = std::pow(10.0, 20.0 - 5.0 * static_cast<double>(j));
    for (double& v : a.col(j)) v *= scale;
  }
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  for (std::size_t k = 1; k < r.sigma.size(); ++k) EXPECT_GE(r.sigma[k - 1], r.sigma[k]);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(SvdRobustness, DuplicateColumns) {
  Rng rng(74);
  Matrix a = random_gaussian(16, 8, rng);
  for (std::size_t j = 4; j < 8; ++j) {
    const auto src = a.col(j - 4);
    const auto dst = a.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const SvdResult r = one_sided_jacobi(a, *make_ordering("odd-even"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rank(1e-9), 4u);  // duplicated pairs are rank-degenerate
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(SvdRobustness, ZeroMatrix) {
  const Matrix z(10, 6);
  const SvdResult r = one_sided_jacobi(z, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
  for (double s : r.sigma) EXPECT_EQ(s, 0.0);
  EXPECT_EQ(r.rank(), 0u);
}

TEST(SvdRobustness, SingleNonzeroEntry) {
  Matrix a(8, 4);
  a(3, 2) = -5.0;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.sigma[0], 5.0, 1e-14);
  for (std::size_t k = 1; k < 4; ++k) EXPECT_EQ(r.sigma[k], 0.0);
}

TEST(SvdRobustness, NearlyParallelColumns) {
  // Columns differing by 1e-10 perturbations: severe cancellation territory.
  Rng rng(75);
  Matrix a(32, 6);
  std::vector<double> base(32);
  for (auto& v : base) v = rng.normal();
  for (std::size_t j = 0; j < 6; ++j) {
    const auto dst = a.col(j);
    for (std::size_t i = 0; i < 32; ++i) dst[i] = base[i] + 1e-10 * rng.normal();
  }
  const SvdResult r = one_sided_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.sigma[0], 1.0);
  EXPECT_LT(r.sigma[1] / r.sigma[0], 1e-8);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(SvdRobustness, AlreadyOrthogonalColumnsButUnsorted) {
  // Orthogonal columns with increasing norms: no rotations, only fused swaps.
  Matrix a(8, 4);
  for (int j = 0; j < 4; ++j) a(static_cast<std::size_t>(j), static_cast<std::size_t>(j)) = j + 1.0;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.rotations, 0u);
  EXPECT_GT(r.swaps, 0u);
  EXPECT_DOUBLE_EQ(r.sigma[0], 4.0);
  EXPECT_DOUBLE_EQ(r.sigma[3], 1.0);
}

TEST(SvdRobustness, MinimalSizeTwoColumns) {
  const Matrix a = Matrix::from_rows({{3, 1}, {1, 3}, {0, 0}});
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(r.sigma[1], 2.0, 1e-12);
}

TEST(SvdRobustness, NanInputFailsFastNamingTheColumn) {
  // A poisoned input must fail precisely at entry — naming the offending
  // column — instead of iterating to max_sweeps on IEEE-propagated garbage.
  Rng rng(76);
  Matrix a = random_gaussian(16, 8, rng);
  a(5, 2) = std::numeric_limits<double>::quiet_NaN();
  try {
    one_sided_jacobi(a, *make_ordering("fat-tree"));
    FAIL() << "expected the payload guard to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("one_sided_jacobi"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("column 2"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Degenerate inputs across every registered engine (one-sided SvdResult
// family). Zero and duplicate columns must yield finite sorted sigma, the
// exact rank, and — because the trailing U columns carry no information —
// exactly-zero U columns for the zero singular values.

using EngineFn = SvdResult (*)(const Matrix&);

struct NamedEngine {
  const char* name;
  EngineFn run;
};

const NamedEngine kOneSidedEngines[] = {
    {"serial",
     [](const Matrix& a) { return one_sided_jacobi(a, *make_ordering("fat-tree")); }},
    {"threaded",
     [](const Matrix& a) { return one_sided_jacobi_threaded(a, *make_ordering("new-ring")); }},
    {"cyclic", [](const Matrix& a) { return cyclic_jacobi(a); }},
    {"block-gram",
     [](const Matrix& a) {
       BlockJacobiOptions opt;
       opt.inner_mode = InnerMode::kGram;
       opt.block_width = 2;
       return block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
     }},
    {"block-elementwise",
     [](const Matrix& a) {
       BlockJacobiOptions opt;
       opt.inner_mode = InnerMode::kElementwise;
       opt.block_width = 2;
       return block_one_sided_jacobi(a, *make_ordering("round-robin"), opt);
     }},
    {"preconditioned",
     [](const Matrix& a) { return qr_preconditioned_jacobi(a, *make_ordering("fat-tree")); }},
    {"spmd", [](const Matrix& a) { return spmd_jacobi(a, *make_ordering("fat-tree")); }},
    {"distributed",
     [](const Matrix& a) {
       const FatTreeTopology topo(static_cast<int>(a.cols()) / 2, CapacityProfile::kPerfect);
       return distributed_jacobi(a, *make_ordering("fat-tree"), topo).svd;
     }},
};

void check_degenerate(const SvdResult& r, const char* engine, std::size_t rank) {
  ASSERT_TRUE(r.converged) << engine;
  EXPECT_EQ(r.status, SvdStatus::kConverged) << engine;
  for (const double s : r.sigma) EXPECT_TRUE(std::isfinite(s)) << engine;
  for (std::size_t k = 1; k < r.sigma.size(); ++k)
    EXPECT_GE(r.sigma[k - 1], r.sigma[k]) << engine;
  EXPECT_EQ(r.rank(1e-9), rank) << engine;
  // U columns for the zero singular values are exactly zero, never garbage
  // left over from dividing a near-zero column by a near-zero sigma.
  for (std::size_t k = rank; k < r.sigma.size(); ++k)
    for (const double v : r.u.col(k)) EXPECT_EQ(v, 0.0) << engine << " U col " << k;
}

TEST(SvdRobustness, ZeroColumnsAcrossEveryEngine) {
  Rng rng(78);
  const std::vector<double> spec = geometric_spectrum(6, 1e6);
  const Matrix b = with_spectrum(12, 6, spec, rng);
  Matrix a(12, 8);
  for (std::size_t j = 0; j < 6; ++j)
    std::copy(b.col(j).begin(), b.col(j).end(), a.col(j).begin());
  for (const NamedEngine& e : kOneSidedEngines) {
    SCOPED_TRACE(e.name);
    check_degenerate(e.run(a), e.name, 6);
  }
}

TEST(SvdRobustness, DuplicateColumnsAcrossEveryEngine) {
  Rng rng(79);
  const std::vector<double> spec = geometric_spectrum(4, 1e3);
  const Matrix b = with_spectrum(12, 4, spec, rng);
  Matrix a(12, 8);
  for (std::size_t j = 0; j < 4; ++j) {
    std::copy(b.col(j).begin(), b.col(j).end(), a.col(j).begin());
    std::copy(b.col(j).begin(), b.col(j).end(), a.col(4 + j).begin());
  }
  for (const NamedEngine& e : kOneSidedEngines) {
    SCOPED_TRACE(e.name);
    const SvdResult r = e.run(a);
    check_degenerate(r, e.name, 4);
    // [B | B] has sigma = sqrt(2) * sigma(B) for the nonzero half.
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(r.sigma[k], std::sqrt(2.0) * spec[k], 1e-12 * spec[0]) << e.name;
  }
}

TEST(SvdRobustness, KogbetliantzDegenerateInputsStayOrthogonal) {
  // The two-sided engine keeps a fully orthogonal U: zero singular values do
  // NOT zero U columns there — instead the whole factor must stay orthonormal.
  Rng rng(80);
  const std::vector<double> spec = geometric_spectrum(6, 1e6);
  const Matrix b = with_spectrum(8, 6, spec, rng);
  Matrix a(8, 8);
  for (std::size_t j = 0; j < 6; ++j)
    std::copy(b.col(j).begin(), b.col(j).end(), a.col(j).begin());
  const KogbetliantzResult r = kogbetliantz_svd(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.status, SvdStatus::kConverged);
  for (const double s : r.sigma) EXPECT_TRUE(std::isfinite(s));
  std::size_t rank = 0;
  for (const double s : r.sigma)
    if (s > 1e-9 * r.sigma[0]) ++rank;
  EXPECT_EQ(rank, 6u);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double uij = dot(r.u.col(i), r.u.col(j));
      EXPECT_NEAR(uij, i == j ? 1.0 : 0.0, 1e-12) << "U^T U (" << i << "," << j << ")";
    }
  }
}

TEST(SvdRobustness, InfInputRejectedByEveryEngine) {
  Rng rng(77);
  Matrix a = random_gaussian(16, 8, rng);
  a(0, 7) = std::numeric_limits<double>::infinity();
  const auto ord = make_ordering("fat-tree");
  EXPECT_THROW(one_sided_jacobi(a, *ord), std::invalid_argument);
  EXPECT_THROW(one_sided_jacobi_threaded(a, *ord), std::invalid_argument);
  EXPECT_THROW(cyclic_jacobi(a), std::invalid_argument);
}

}  // namespace
}  // namespace treesvd
