// Tests for Jacobi plane rotations, including the fused rotate-and-swap of
// paper eq. (3).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/rotation.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(Rotation, OrthogonalisesRandomPairs) {
  Rng rng(21);
  for (int rep = 0; rep < 50; ++rep) {
    auto x = random_vec(40, rng);
    auto y = random_vec(40, rng);
    const GramPair g = gram_pair(x, y);
    const JacobiRotation r = compute_rotation(g, 0.0);
    if (r.identity) continue;  // already orthogonal (unlikely)
    apply_rotation(x, y, r.c, r.s);
    const double cosine = std::fabs(dot(x, y)) / (nrm2(x) * nrm2(y));
    EXPECT_LT(cosine, 1e-12);
  }
}

TEST(Rotation, PreservesFrobeniusNormOfThePair) {
  Rng rng(22);
  auto x = random_vec(16, rng);
  auto y = random_vec(16, rng);
  const double before = dot(x, x) + dot(y, y);
  const GramPair g = gram_pair(x, y);
  const JacobiRotation r = compute_rotation(g, 0.0);
  apply_rotation(x, y, r.c, r.s);
  EXPECT_NEAR(dot(x, x) + dot(y, y), before, before * 1e-12);
}

TEST(Rotation, IdentityWhenOrthogonal) {
  const std::vector<double> x = {1, 0};
  const std::vector<double> y = {0, 1};
  const JacobiRotation r = compute_rotation(gram_pair(x, y), 1e-13);
  EXPECT_TRUE(r.identity);
}

TEST(Rotation, IdentityForZeroColumn) {
  const std::vector<double> x = {0, 0};
  const std::vector<double> y = {1, 2};
  EXPECT_TRUE(compute_rotation(gram_pair(x, y), 1e-13).identity);
  EXPECT_TRUE(compute_rotation(gram_pair(y, x), 1e-13).identity);
}

TEST(Rotation, ThresholdSkipsNearOrthogonal) {
  // |apq| / sqrt(app*aqq) = 1e-8: rotated at tol 1e-13, skipped at tol 1e-6.
  const GramPair g{1.0, 1.0, 1e-8};
  EXPECT_FALSE(compute_rotation(g, 1e-13).identity);
  EXPECT_TRUE(compute_rotation(g, 1e-6).identity);
  EXPECT_FALSE(is_orthogonal(g, 1e-13));
  EXPECT_TRUE(is_orthogonal(g, 1e-6));
}

TEST(Rotation, SmallAngleRootChosen) {
  // The rotation angle must satisfy |t| <= 1 (|angle| <= pi/4), the choice
  // that gives quadratic convergence.
  Rng rng(23);
  for (int rep = 0; rep < 100; ++rep) {
    const GramPair g{rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0), rng.uniform(-5.0, 5.0)};
    const JacobiRotation r = compute_rotation(g, 0.0);
    if (r.identity) continue;
    EXPECT_LE(std::fabs(r.s), std::fabs(r.c) + 1e-15);
  }
}

TEST(Rotation, RotatedNormsMatchRecomputation) {
  Rng rng(24);
  auto x = random_vec(32, rng);
  auto y = random_vec(32, rng);
  const GramPair g = gram_pair(x, y);
  const JacobiRotation r = compute_rotation(g, 0.0);
  const RotatedNorms rn = rotated_norms(g, r);
  apply_rotation(x, y, r.c, r.s);
  EXPECT_NEAR(rn.app, dot(x, x), 1e-9);
  EXPECT_NEAR(rn.aqq, dot(y, y), 1e-9);
}

TEST(Rotation, FusedSwapEqualsRotateThenSwap) {
  Rng rng(25);
  auto x1 = random_vec(20, rng);
  auto y1 = random_vec(20, rng);
  auto x2 = x1;
  auto y2 = y1;
  const JacobiRotation r = compute_rotation(gram_pair(x1, y1), 0.0);
  ASSERT_FALSE(r.identity);
  // Path 1: rotate then explicitly exchange.
  apply_rotation(x1, y1, r.c, r.s);
  swap(std::span<double>(x1), std::span<double>(y1));
  // Path 2: fused (paper eq. (3)).
  apply_rotation_swapped(x2, y2, r.c, r.s);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_DOUBLE_EQ(x1[i], x2[i]);
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
  }
}

TEST(Rotation, FusedSwapWithIdentityRotationIsPlainSwap) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  apply_rotation_swapped(x, y, 1.0, 0.0);
  EXPECT_EQ(x, (std::vector<double>{3, 4}));
  EXPECT_EQ(y, (std::vector<double>{1, 2}));
}

TEST(Rotation, FusedRotateAndNormsMatchesTwoPass) {
  Rng rng(26);
  // Sizes cover the vector main loop and every tail length.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
                              std::size_t{7}, std::size_t{32}, std::size_t{33}}) {
    auto x = random_vec(n, rng);
    auto y = random_vec(n, rng);
    auto xr = x;
    auto yr = y;
    const double c = 0.8;
    const double s = 0.6;
    const RotatedNorms rn = rotate_and_norms(x, y, c, s);
    apply_rotation(xr, yr, c, s);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(x[i], xr[i]) << "n=" << n;
      EXPECT_DOUBLE_EQ(y[i], yr[i]) << "n=" << n;
    }
    EXPECT_NEAR(rn.app, sumsq(xr), 1e-12 * (1.0 + rn.app)) << "n=" << n;
    EXPECT_NEAR(rn.aqq, sumsq(yr), 1e-12 * (1.0 + rn.aqq)) << "n=" << n;
  }
}

TEST(Rotation, FusedRotateAndNormsSwappedMatchesTwoPass) {
  Rng rng(27);
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{6}, std::size_t{31},
                              std::size_t{64}}) {
    auto x = random_vec(n, rng);
    auto y = random_vec(n, rng);
    auto xr = x;
    auto yr = y;
    const double c = 0.28;
    const double s = 0.96;
    const RotatedNorms rn = rotate_and_norms_swapped(x, y, c, s);
    apply_rotation_swapped(xr, yr, c, s);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(x[i], xr[i]) << "n=" << n;
      EXPECT_DOUBLE_EQ(y[i], yr[i]) << "n=" << n;
    }
    EXPECT_NEAR(rn.app, sumsq(xr), 1e-12 * (1.0 + rn.app)) << "n=" << n;
    EXPECT_NEAR(rn.aqq, sumsq(yr), 1e-12 * (1.0 + rn.aqq)) << "n=" << n;
  }
}

TEST(Rotation, FusedRotateAndNormsPreservesPairEnergy) {
  // A rotation is orthogonal: the returned norms must sum to the pair's
  // pre-rotation energy.
  Rng rng(28);
  auto x = random_vec(48, rng);
  auto y = random_vec(48, rng);
  const double before = sumsq(x) + sumsq(y);
  const RotatedNorms rn = rotate_and_norms(x, y, 0.6, 0.8);
  EXPECT_NEAR(rn.app + rn.aqq, before, before * 1e-12);
}

TEST(Rotation, RotatedNormsIdentityPassThrough) {
  const GramPair g{2.0, 3.0, 0.1};
  const RotatedNorms rn = rotated_norms(g, JacobiRotation{});
  EXPECT_EQ(rn.app, 2.0);
  EXPECT_EQ(rn.aqq, 3.0);
}

}  // namespace
}  // namespace treesvd
