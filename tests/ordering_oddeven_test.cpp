// Odd-even transposition ordering (the nearest-neighbour ring baseline).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/odd_even.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

TEST(OddEven, TakesNSteps) {
  const OddEvenOrdering oe;
  EXPECT_EQ(oe.steps(16), 16);
  EXPECT_EQ(oe.sweep(16).steps(), 16);
}

TEST(OddEven, ReversesTheLineAfterOneSweep) {
  const Sweep s = OddEvenOrdering().sweep(12);
  const auto fin = s.final_layout();
  for (int i = 0; i < 12; ++i) EXPECT_EQ(fin[static_cast<std::size_t>(i)], 11 - i);
}

TEST(OddEven, IdentityAfterTwoSweeps) {
  const OddEvenOrdering oe;
  std::vector<int> layout(24);
  std::iota(layout.begin(), layout.end(), 0);
  for (int k = 0; k < 2; ++k) {
    const Sweep s = oe.sweep_from(layout, k);
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  for (int i = 0; i < 24; ++i) EXPECT_EQ(layout[static_cast<std::size_t>(i)], i);
}

TEST(OddEven, EverySecondStepHasOneIdleLeaf) {
  const Sweep s = OddEvenOrdering().sweep(16);
  for (int t = 0; t < s.steps(); ++t) {
    const std::size_t expect = (t % 2 == 0) ? 8u : 7u;
    EXPECT_EQ(s.pairs(t).size(), expect) << "step " << t;
  }
}

TEST(OddEven, IdleLeafIsTheWrapPair) {
  const Sweep s = OddEvenOrdering().sweep(8);
  for (int t = 0; t < s.steps(); ++t) {
    if (t % 2 == 1) {
      EXPECT_FALSE(s.leaf_active(t, s.leaves() - 1));
      for (int k = 0; k + 1 < s.leaves(); ++k) EXPECT_TRUE(s.leaf_active(t, k));
    }
  }
}

TEST(OddEven, MovementIsACyclicShiftPlusLocalSwaps) {
  // Between steps every column moves at most one slot around the ring of
  // slots (the hallmark of nearest-neighbour communication).
  const int n = 16;
  const Sweep s = OddEvenOrdering().sweep(n);
  for (int t = 0; t < s.steps(); ++t) {
    for (const ColumnMove& mv : s.moves(t)) {
      const int d = std::abs(mv.from_slot - mv.to_slot);
      const int ring_d = std::min(d, n - d);
      EXPECT_LE(ring_d, 2) << "step " << t << " index " << mv.index;
    }
  }
}

TEST(OddEven, FirstPhasePairsAreConsecutive) {
  const Sweep s = OddEvenOrdering().sweep(10);
  const auto pairs = s.pairs(0);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_EQ(pairs[k].even, static_cast<int>(2 * k));
    EXPECT_EQ(pairs[k].odd, static_cast<int>(2 * k + 1));
  }
}

TEST(OddEven, ComparedPairsInterchange) {
  // After step 0, each compared pair has swapped line positions: step 1 must
  // pair (old even-slot occupant of leaf k) with the neighbour's occupant.
  const Sweep s = OddEvenOrdering().sweep(8);
  const auto pairs1 = s.pairs(1);
  // Line after phase 0 swap: 1 0 3 2 5 4 7 6 -> phase-1 pairs (0,3)(2,5)(4,7).
  ASSERT_EQ(pairs1.size(), 3u);
  EXPECT_EQ(std::min(pairs1[0].even, pairs1[0].odd), 0);
  EXPECT_EQ(std::max(pairs1[0].even, pairs1[0].odd), 3);
  EXPECT_EQ(std::min(pairs1[1].even, pairs1[1].odd), 2);
  EXPECT_EQ(std::max(pairs1[1].even, pairs1[1].odd), 5);
  EXPECT_EQ(std::min(pairs1[2].even, pairs1[2].odd), 4);
  EXPECT_EQ(std::max(pairs1[2].even, pairs1[2].odd), 7);
}

}  // namespace
}  // namespace treesvd
