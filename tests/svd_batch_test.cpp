// Batched many-SVD engine: the bitwise-sequential-equivalence contract.
//
// Every test here reduces to one claim: lane b of a BatchedSvd solve is the
// *same run* as one_sided_jacobi on input b — same bits in sigma/U/V, same
// sweep, rotation, swap and kernel-pass counts, same status. The digest
// helpers (svd/determinism.hpp) make that a single integer comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/generators.hpp"
#include "linalg/rotation.hpp"
#include "svd/batch.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

std::vector<Matrix> gaussian_batch(std::size_t count, std::size_t m, std::size_t n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> inputs;
  inputs.reserve(count);
  for (std::size_t b = 0; b < count; ++b) inputs.push_back(random_gaussian(m, n, rng));
  return inputs;
}

void expect_bitwise_sequential(const std::vector<Matrix>& inputs,
                               const std::vector<SvdResult>& batched, const Ordering& ordering,
                               const JacobiOptions& opt) {
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    const SvdResult ref = one_sided_jacobi(inputs[b], ordering, opt);
    EXPECT_EQ(result_digest(batched[b]), result_digest(ref)) << "lane " << b;
    // Digest equality should already imply these, but on failure the direct
    // comparisons say *what* diverged.
    EXPECT_EQ(batched[b].sweeps, ref.sweeps) << "lane " << b;
    EXPECT_EQ(batched[b].converged, ref.converged) << "lane " << b;
    EXPECT_EQ(batched[b].rotations, ref.rotations) << "lane " << b;
    EXPECT_EQ(batched[b].swaps, ref.swaps) << "lane " << b;
    EXPECT_EQ(batched[b].kernel_stats.pairs, ref.kernel_stats.pairs) << "lane " << b;
    EXPECT_EQ(batched[b].kernel_stats.dot_passes, ref.kernel_stats.dot_passes) << "lane " << b;
    EXPECT_EQ(batched[b].kernel_stats.norm_refreshes, ref.kernel_stats.norm_refreshes)
        << "lane " << b;
  }
}

TEST(BatchedSvd, BitwiseEqualsSequentialAllOrderingsAndBatchSizes) {
  for (const std::string& name : ordering_names({4})) {
    const OrderingPtr ord = make_ordering(name);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                    std::size_t{17}}) {
      const auto inputs = gaussian_batch(batch, 9, 6, 0x5eedULL + batch);
      BatchedSvd engine(9, 6, *ord);
      const auto results = engine.solve({inputs.data(), inputs.size()});
      expect_bitwise_sequential(inputs, results, *ord, BatchedSvdOptions{}.jacobi);
    }
  }
}

TEST(BatchedSvd, MixedScaleLanesExerciseEquilibration) {
  // Lanes at wildly different scales (2^±400 on top of unit Gaussians): some
  // lanes trigger the auto-equilibration rescale and the scaled kernel retry
  // paths, their batchmates do not — and each must still match its own
  // sequential run, diagnostics included.
  const OrderingPtr ord = make_ordering("round-robin");
  auto inputs = gaussian_batch(8, 8, 6, 77);
  const double scales[8] = {1.0,        0x1p+400, 0x1p-400, 1.0,
                            0x1p+380,   1.0,      0x1p-390, 0x1p+400};
  for (std::size_t b = 0; b < inputs.size(); ++b)
    for (double& x : inputs[b].data()) x *= scales[b];
  BatchedSvd engine(8, 6, *ord);
  const auto results = engine.solve({inputs.data(), inputs.size()});
  bool any_equilibrated = false;
  for (const SvdResult& r : results) any_equilibrated |= r.diagnostics.equilibrated;
  EXPECT_TRUE(any_equilibrated);
  expect_bitwise_sequential(inputs, results, *ord, BatchedSvdOptions{}.jacobi);
}

TEST(BatchedSvd, EarlyRetiringLanesFreezeIndependently) {
  // Orthogonal-column lanes converge in one sweep and retire; the hard
  // Gaussian lanes keep iterating. Retired lanes' counters and payloads must
  // be frozen at retirement, exactly like their (short) sequential runs.
  const OrderingPtr ord = make_ordering("round-robin");
  Rng rng(123);
  std::vector<Matrix> inputs;
  for (std::size_t b = 0; b < 8; ++b) {
    if (b % 2 == 0) {
      // Diagonal-ish: columns already orthogonal with descending norms.
      Matrix a(10, 6);
      for (std::size_t j = 0; j < 6; ++j) a(j, j) = static_cast<double>(10 - j);
      inputs.push_back(a);
    } else {
      inputs.push_back(random_gaussian(10, 6, rng));
    }
  }
  BatchedSvd engine(10, 6, *ord);
  const auto results = engine.solve({inputs.data(), inputs.size()});
  int min_sweeps = results[0].sweeps;
  int max_sweeps = results[0].sweeps;
  for (const SvdResult& r : results) {
    min_sweeps = std::min(min_sweeps, r.sweeps);
    max_sweeps = std::max(max_sweeps, r.sweeps);
  }
  EXPECT_LT(min_sweeps, max_sweeps);  // lanes genuinely retired at different sweeps
  expect_bitwise_sequential(inputs, results, *ord, BatchedSvdOptions{}.jacobi);
}

TEST(BatchedSvd, SimdAndReferenceKernelsAgreeBitwise) {
  const OrderingPtr ord = make_ordering("odd-even");
  const auto inputs = gaussian_batch(8, 12, 7, 991);
  BatchedSvdOptions simd;
  BatchedSvdOptions ref;
  ref.use_simd = false;
  BatchedSvd fast(12, 7, *ord, simd);
  BatchedSvd slow(12, 7, *ord, ref);
  const auto rf = fast.solve({inputs.data(), inputs.size()});
  const auto rs = slow.solve({inputs.data(), inputs.size()});
  for (std::size_t b = 0; b < inputs.size(); ++b)
    EXPECT_EQ(result_digest(rf[b]), result_digest(rs[b])) << "lane " << b;
}

TEST(BatchedSvd, UncachedPathMatchesSequential) {
  const OrderingPtr ord = make_ordering("round-robin");
  const auto inputs = gaussian_batch(8, 8, 6, 4242);
  BatchedSvdOptions opt;
  opt.jacobi.cache_norms = false;
  BatchedSvd engine(8, 6, *ord, opt);
  const auto results = engine.solve({inputs.data(), inputs.size()});
  expect_bitwise_sequential(inputs, results, *ord, opt.jacobi);
}

TEST(BatchedSvd, ThreadedShardsMatchSerialShards) {
  const OrderingPtr ord = make_ordering("round-robin");
  const auto inputs = gaussian_batch(17, 8, 6, 31337);
  BatchedSvdOptions opt;
  opt.lane_width = 4;  // 17 problems -> 5 shards
  BatchedSvd engine(8, 6, *ord, opt);
  const auto serial = engine.solve({inputs.data(), inputs.size()}, nullptr);
  ThreadPool pool(4);
  const auto threaded = engine.solve({inputs.data(), inputs.size()}, &pool);
  for (std::size_t b = 0; b < inputs.size(); ++b)
    EXPECT_EQ(result_digest(serial[b]), result_digest(threaded[b])) << "lane " << b;
}

TEST(BatchedSvd, ShardArenasAreReusedAcrossSolves) {
  const OrderingPtr ord = make_ordering("round-robin");
  BatchedSvd engine(8, 6, *ord);
  EXPECT_EQ(engine.capacity(), 0u);
  engine.reserve(10);
  const std::size_t cap = engine.capacity();
  EXPECT_GE(cap, 10u);
  // Two different batches through the same arenas: packing must fully reset
  // lane state (a stale active flag or cache entry would corrupt run 2).
  const auto first = gaussian_batch(10, 8, 6, 1);
  const auto second = gaussian_batch(10, 8, 6, 2);
  (void)engine.solve({first.data(), first.size()});
  const auto results = engine.solve({second.data(), second.size()});
  EXPECT_EQ(engine.capacity(), cap);  // no regrowth
  expect_bitwise_sequential(second, results, *ord, BatchedSvdOptions{}.jacobi);
}

TEST(BatchedSvd, LaneWidth16Works) {
  const OrderingPtr ord = make_ordering("round-robin");
  BatchedSvdOptions opt;
  opt.lane_width = 16;
  const auto inputs = gaussian_batch(16, 8, 6, 555);
  BatchedSvd engine(8, 6, *ord, opt);
  const auto results = engine.solve({inputs.data(), inputs.size()});
  expect_bitwise_sequential(inputs, results, *ord, opt.jacobi);
}

TEST(BatchedSvd, RejectsInvalidConfiguration) {
  const OrderingPtr ord = make_ordering("round-robin");
  BatchedSvdOptions bad_width;
  bad_width.lane_width = 5;
  EXPECT_THROW(BatchedSvd(8, 6, *ord, bad_width), std::invalid_argument);
  BatchedSvdOptions track;
  track.jacobi.track_off = true;
  EXPECT_THROW(BatchedSvd(8, 6, *ord, track), std::invalid_argument);
  EXPECT_THROW(BatchedSvd(4, 6, *ord), std::invalid_argument);  // m < n
  BatchedSvd engine(8, 6, *ord);
  const auto wrong_shape = gaussian_batch(2, 9, 6, 8);
  EXPECT_THROW(engine.solve({wrong_shape.data(), wrong_shape.size()}), std::invalid_argument);
}

// --- Batched kernel unit checks (SIMD vs scalar, masking, -0.0) -----------

// Scatters `lanes` per-lane columns (each m doubles) into SoA layout.
std::vector<double> to_soa(const std::vector<std::vector<double>>& lanes) {
  const std::size_t w = lanes.size();
  const std::size_t m = lanes[0].size();
  std::vector<double> soa(m * w);
  for (std::size_t b = 0; b < w; ++b)
    for (std::size_t i = 0; i < m; ++i) soa[i * w + b] = lanes[b][i];
  return soa;
}

TEST(BatchedKernels, DotSumsqGramMatchScalarBitwise) {
  Rng rng(9);
  // Odd length exercises the tail-row handling of the accumulator chains.
  const std::size_t m = 13;
  for (const std::size_t w : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    std::vector<std::vector<double>> xs(w, std::vector<double>(m));
    std::vector<std::vector<double>> ys(w, std::vector<double>(m));
    for (std::size_t b = 0; b < w; ++b)
      for (std::size_t i = 0; i < m; ++i) {
        xs[b][i] = rng.normal();
        ys[b][i] = rng.normal();
      }
    const auto x = to_soa(xs);
    const auto y = to_soa(ys);
    std::vector<double> d(w);
    std::vector<double> sq(w);
    std::vector<double> app(w);
    std::vector<double> aqq(w);
    std::vector<double> apq(w);
    batched_dot(x.data(), y.data(), m, w, d.data());
    batched_sumsq(x.data(), m, w, sq.data());
    batched_gram_pair(x.data(), y.data(), m, w, app.data(), aqq.data(), apq.data());
    for (std::size_t b = 0; b < w; ++b) {
      EXPECT_EQ(d[b], dot(xs[b], ys[b])) << "w=" << w << " lane " << b;
      EXPECT_EQ(sq[b], sumsq(xs[b])) << "w=" << w << " lane " << b;
      const GramPair g = gram_pair(xs[b], ys[b]);
      EXPECT_EQ(app[b], g.app) << "w=" << w << " lane " << b;
      EXPECT_EQ(aqq[b], g.aqq) << "w=" << w << " lane " << b;
      EXPECT_EQ(apq[b], g.apq) << "w=" << w << " lane " << b;
    }
  }
}

TEST(BatchedKernels, MaskedLanesKeepNegativeZeroAndDenormals) {
  const std::size_t m = 7;
  const std::size_t w = 4;
  std::vector<std::vector<double>> xs(w, std::vector<double>(m));
  std::vector<std::vector<double>> ys(w, std::vector<double>(m));
  Rng rng(11);
  for (std::size_t b = 0; b < w; ++b)
    for (std::size_t i = 0; i < m; ++i) {
      xs[b][i] = rng.normal();
      ys[b][i] = rng.normal();
    }
  // Lane 2 is masked out and carries the payloads an identity rotation would
  // damage: -0.0 (0*x flips its sign) and denormals.
  xs[2] = {-0.0, 5e-324, -4.9e-324, -0.0, 1e-310, -0.0, 0.0};
  ys[2] = {-0.0, -0.0, 5e-324, 0.0, -0.0, -1e-320, -0.0};
  auto x = to_soa(xs);
  auto y = to_soa(ys);
  const auto x_before = x;
  const auto y_before = y;
  const double c[w] = {0.8, 0.6, 1.0, 0.6};
  const double s[w] = {0.6, -0.8, 0.0, 0.8};
  const std::uint8_t rot[w] = {1, 1, 0, 1};
  const std::uint8_t swp[w] = {0, 1, 0, 0};
  std::vector<double> app(w);
  std::vector<double> aqq(w);
  batched_rotate_and_norms(x.data(), y.data(), m, w, c, s, rot, swp, app.data(), aqq.data());
  for (std::size_t i = 0; i < m; ++i) {
    // Bit-level comparison: EXPECT_EQ(-0.0, 0.0) would pass, memcmp won't.
    EXPECT_EQ(std::memcmp(&x[i * w + 2], &x_before[i * w + 2], sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&y[i * w + 2], &y_before[i * w + 2], sizeof(double)), 0) << i;
  }
  // Rotated lanes match the scalar fused kernel bitwise.
  for (std::size_t b = 0; b < w; ++b) {
    if (rot[b] == 0) continue;
    auto sx = xs[b];
    auto sy = ys[b];
    const RotatedNorms rn = swp[b] != 0 ? rotate_and_norms_swapped(sx, sy, c[b], s[b])
                                        : rotate_and_norms(sx, sy, c[b], s[b]);
    EXPECT_EQ(app[b], rn.app) << "lane " << b;
    EXPECT_EQ(aqq[b], rn.aqq) << "lane " << b;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(x[i * w + b], sx[i]) << "lane " << b << " row " << i;
      EXPECT_EQ(y[i * w + b], sy[i]) << "lane " << b << " row " << i;
    }
  }
}

TEST(BatchedKernels, RefFormsMatchVectorizedForms) {
  Rng rng(21);
  const std::size_t m = 10;
  const std::size_t w = 8;
  std::vector<double> x(m * w);
  std::vector<double> y(m * w);
  for (double& v : x) v = rng.normal();
  for (double& v : y) v = rng.normal();
  std::vector<double> a1(w);
  std::vector<double> a2(w);
  batched_dot(x.data(), y.data(), m, w, a1.data());
  batched_dot_ref(x.data(), y.data(), m, w, a2.data());
  EXPECT_EQ(a1, a2);
  batched_sumsq(x.data(), m, w, a1.data());
  batched_sumsq_ref(x.data(), m, w, a2.data());
  EXPECT_EQ(a1, a2);
  double c[8];
  double s[8];
  std::uint8_t rot[8];
  std::uint8_t swp[8];
  for (std::size_t b = 0; b < w; ++b) {
    const double t = rng.uniform(-1.0, 1.0);
    c[b] = 1.0 / std::sqrt(1.0 + t * t);
    s[b] = c[b] * t;
    rot[b] = b % 3 == 0 ? 0 : 1;
    swp[b] = b % 2;
  }
  auto xv = x;
  auto yv = y;
  auto xr = x;
  auto yr = y;
  std::vector<double> app1(w);
  std::vector<double> aqq1(w);
  std::vector<double> app2(w);
  std::vector<double> aqq2(w);
  batched_rotate_and_norms(xv.data(), yv.data(), m, w, c, s, rot, swp, app1.data(), aqq1.data());
  batched_rotate_and_norms_ref(xr.data(), yr.data(), m, w, c, s, rot, swp, app2.data(),
                               aqq2.data());
  EXPECT_EQ(xv, xr);
  EXPECT_EQ(yv, yr);
  for (std::size_t b = 0; b < w; ++b) {
    if (rot[b] == 0) continue;
    EXPECT_EQ(app1[b], app2[b]) << b;
    EXPECT_EQ(aqq1[b], aqq2[b]) << b;
  }
  xv = x;
  yv = y;
  xr = x;
  yr = y;
  batched_apply_rotation(xv.data(), yv.data(), m, w, c, s, rot, swp);
  batched_apply_rotation_ref(xr.data(), yr.data(), m, w, c, s, rot, swp);
  EXPECT_EQ(xv, xr);
  EXPECT_EQ(yv, yr);
}

TEST(BatchedKernels, BatchedComputeRotationMatchesScalar) {
  const double app[4] = {2.0, 1.0, 1e-300, 4.0};
  const double aqq[4] = {1.0, 1.0, 2e-300, 4.0};
  const double apq[4] = {0.5, 1e-20, 1e-301, 0.0};
  double c[4];
  double s[4];
  std::uint8_t id[4];
  batched_compute_rotation(app, aqq, apq, 4, 1e-13, c, s, id);
  for (std::size_t b = 0; b < 4; ++b) {
    const JacobiRotation r = compute_rotation({app[b], aqq[b], apq[b]}, 1e-13);
    EXPECT_EQ(id[b] != 0, r.identity) << b;
    EXPECT_EQ(c[b], r.identity ? 1.0 : r.c) << b;
    EXPECT_EQ(s[b], r.identity ? 0.0 : r.s) << b;
  }
}

}  // namespace
}  // namespace treesvd
