// End-to-end integration tests across modules: consistent singular values
// across all orderings, SVD-based least squares and low-rank approximation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "treesvd.hpp"

namespace treesvd {
namespace {

TEST(Integration, AllOrderingsAgreeOnSigma) {
  Rng rng(777);
  const Matrix a = random_gaussian(48, 32, rng);
  std::vector<double> reference;
  for (const auto& name : ordering_names({2, 4, 8})) {
    const auto ord = make_ordering(name);
    const SvdResult r = one_sided_jacobi(a, *ord);
    ASSERT_TRUE(r.converged) << name;
    if (reference.empty()) {
      reference = r.sigma;
      continue;
    }
    for (std::size_t k = 0; k < reference.size(); ++k)
      EXPECT_NEAR(r.sigma[k], reference[k], 1e-9) << name << " k=" << k;
  }
}

TEST(Integration, LeastSquaresViaPseudoinverse) {
  // Solve min ||Ax - b|| through the SVD and check the normal equations.
  Rng rng(778);
  const Matrix a = random_gaussian(30, 10, rng);
  std::vector<double> b(30);
  for (auto& v : b) v = rng.normal();

  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  // x = V diag(1/sigma) U^T b
  std::vector<double> utb(10, 0.0);
  for (std::size_t j = 0; j < 10; ++j) utb[j] = dot(r.u.col(j), b);
  std::vector<double> x(10, 0.0);
  for (std::size_t j = 0; j < 10; ++j) {
    if (r.sigma[j] <= 1e-12) continue;
    const double coef = utb[j] / r.sigma[j];
    axpy(coef, r.v.col(j), x);
  }
  // Residual must be orthogonal to the column space: ||A^T (Ax - b)|| ~ 0.
  std::vector<double> res(30, 0.0);
  for (std::size_t j = 0; j < 10; ++j) axpy(x[j], a.col(j), res);
  for (std::size_t i = 0; i < 30; ++i) res[i] -= b[i];
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(dot(a.col(j), res), 0.0, 1e-9);
}

TEST(Integration, LowRankApproximationErrorIsTailNorm) {
  // Truncating the SVD to rank k gives error sqrt(sum_{i>k} sigma_i^2)
  // (Eckart-Young, Frobenius norm).
  Rng rng(779);
  const std::vector<double> sigma = {10, 7, 5, 2, 1, 0.5, 0.2, 0.1};
  const Matrix a = with_spectrum(20, 8, sigma, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  const int k = 3;
  Matrix ak(20, 8);
  for (int j = 0; j < k; ++j) {
    for (std::size_t row = 0; row < 20; ++row)
      for (std::size_t col = 0; col < 8; ++col)
        ak(row, col) += r.sigma[static_cast<std::size_t>(j)] *
                        r.u(row, static_cast<std::size_t>(j)) *
                        r.v(col, static_cast<std::size_t>(j));
  }
  double tail = 0.0;
  for (std::size_t j = k; j < 8; ++j) tail += sigma[j] * sigma[j];
  EXPECT_NEAR((a - ak).frobenius_norm(), std::sqrt(tail), 1e-8);
}

TEST(Integration, ModeledRunAndRealRunAgreeOnSweepCounts) {
  // The modeled machine executes the same schedule the SVD engine uses; the
  // rotation totals must line up: steps * leaves-ish rotations per sweep.
  Rng rng(780);
  const int n = 16;
  const Matrix a = random_gaussian(24, n, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult r = one_sided_jacobi(a, *ord);
  ASSERT_TRUE(r.converged);
  const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
  const auto run = model_run(*ord, topo, n, CostParams{}, r.sweeps);
  EXPECT_EQ(run.sweeps, r.sweeps);
  EXPECT_GT(run.per_sweep_total.total_time, 0.0);
}

TEST(Integration, SymmetricEigenproblemViaSvd) {
  // For a symmetric positive definite matrix the singular values are the
  // eigenvalues; cross-check the full pipeline against the tridiagonal QL
  // oracle on the matrix itself (not its Gram matrix).
  Rng rng(781);
  Matrix g = random_gaussian(12, 12, rng);
  Matrix spd = g.transposed() * g;
  for (int i = 0; i < 12; ++i)
    spd(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 1.0;
  const SvdResult r = one_sided_jacobi(spd, *make_ordering("hybrid-g2"));
  ASSERT_TRUE(r.converged);
  auto ev = symmetric_eigenvalues(spd);       // ascending
  std::reverse(ev.begin(), ev.end());         // descending
  for (std::size_t k = 0; k < ev.size(); ++k)
    EXPECT_NEAR(r.sigma[k], ev[k], 1e-8 * ev[0]);
}

TEST(Integration, LargerProblemAllPiecesTogether) {
  Rng rng(782);
  const int n = 64;
  const Matrix a = with_spectrum(96, static_cast<std::size_t>(n),
                                 geometric_spectrum(static_cast<std::size_t>(n), 1e4), rng);
  JacobiOptions opt;
  opt.track_off = true;
  const SvdResult r = one_sided_jacobi_threaded(a, *make_ordering("hybrid-g8"), opt, 2);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-11);
  EXPECT_NEAR(r.sigma[0] / r.sigma[static_cast<std::size_t>(n - 1)], 1e4, 1.0);
}

}  // namespace
}  // namespace treesvd
