// SVD application API: least squares, pseudoinverse, low-rank, rank,
// condition number, null space.
#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/blas1.hpp"
#include "svd/applications.hpp"

namespace treesvd {
namespace {

class Applications : public ::testing::Test {
 protected:
  OrderingPtr ord_ = make_ordering("fat-tree");
  Rng rng_{2025};
};

TEST_F(Applications, LeastSquaresSatisfiesNormalEquations) {
  const Matrix a = random_gaussian(30, 10, rng_);
  std::vector<double> b(30);
  for (auto& v : b) v = rng_.normal();
  const auto x = least_squares_solve(a, b, *ord_);
  std::vector<double> res(b.begin(), b.end());
  for (std::size_t j = 0; j < 10; ++j) axpy(-x[j], a.col(j), res);
  for (std::size_t j = 0; j < 10; ++j) EXPECT_NEAR(dot(a.col(j), res), 0.0, 1e-9);
}

TEST_F(Applications, LeastSquaresExactForConsistentSystems) {
  const Matrix a = random_gaussian(12, 6, rng_);
  std::vector<double> xtrue(6);
  for (auto& v : xtrue) v = rng_.normal();
  std::vector<double> b(12, 0.0);
  for (std::size_t j = 0; j < 6; ++j) axpy(xtrue[j], a.col(j), b);
  const auto x = least_squares_solve(a, b, *ord_);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(x[j], xtrue[j], 1e-10);
}

TEST_F(Applications, LeastSquaresRhsLengthChecked) {
  const Matrix a = random_gaussian(8, 4, rng_);
  std::vector<double> b(7);
  EXPECT_THROW(least_squares_solve(a, b, *ord_), std::invalid_argument);
}

TEST_F(Applications, PseudoInverseMoorePenroseIdentities) {
  const Matrix a = random_gaussian(14, 6, rng_);
  const Matrix p = pseudo_inverse(a, *ord_);
  ASSERT_EQ(p.rows(), 6u);
  ASSERT_EQ(p.cols(), 14u);
  // A A+ A = A and A+ A A+ = A+.
  EXPECT_LT(((a * p) * a - a).frobenius_norm() / a.frobenius_norm(), 1e-11);
  EXPECT_LT(((p * a) * p - p).frobenius_norm() / p.frobenius_norm(), 1e-11);
  // A+ A symmetric (and here, full column rank: identity).
  EXPECT_LT((p * a - Matrix::identity(6)).frobenius_norm(), 1e-10);
}

TEST_F(Applications, PseudoInverseOfRankDeficient) {
  const Matrix a = rank_deficient(16, 8, 3, rng_);
  const Matrix p = pseudo_inverse(a, *ord_, 1e-9);
  EXPECT_LT(((a * p) * a - a).frobenius_norm() / a.frobenius_norm(), 1e-9);
}

TEST_F(Applications, LowRankApproximationErrorIsTailNorm) {
  const std::vector<double> sigma = {8, 4, 2, 1, 0.5, 0.25};
  const Matrix a = with_spectrum(15, 6, sigma, rng_);
  const Matrix a2 = low_rank_approximation(a, 2, *ord_);
  double tail = 0.0;
  for (std::size_t j = 2; j < 6; ++j) tail += sigma[j] * sigma[j];
  EXPECT_NEAR((a - a2).frobenius_norm(), std::sqrt(tail), 1e-9);
}

TEST_F(Applications, LowRankClampsToNumericalRank) {
  const Matrix a = rank_deficient(12, 6, 2, rng_);
  const Matrix full = low_rank_approximation(a, 6, *ord_);
  EXPECT_LT((a - full).frobenius_norm() / a.frobenius_norm(), 1e-9);
}

TEST_F(Applications, ConditionNumber) {
  const Matrix well = with_spectrum(16, 8, geometric_spectrum(8, 100.0), rng_);
  EXPECT_NEAR(condition_number(well, *ord_), 100.0, 1e-6);
  const Matrix sing = rank_deficient(16, 8, 4, rng_);
  EXPECT_TRUE(std::isinf(condition_number(sing, *ord_, 1e-9)));
}

TEST_F(Applications, NumericalRank) {
  EXPECT_EQ(numerical_rank(rank_deficient(20, 10, 7, rng_), *ord_, 1e-9), 7u);
  EXPECT_EQ(numerical_rank(random_gaussian(20, 10, rng_), *ord_), 10u);
  EXPECT_EQ(numerical_rank(Matrix(6, 4), *ord_), 0u);
}

TEST_F(Applications, NullspaceBasisIsOrthonormalAndAnnihilated) {
  const Matrix a = rank_deficient(18, 9, 5, rng_);
  const Matrix ns = nullspace_basis(a, *ord_, 1e-9);
  ASSERT_EQ(ns.cols(), 4u);
  EXPECT_LT(orthonormality_defect(ns), 1e-10);
  EXPECT_LT((a * ns).frobenius_norm() / a.frobenius_norm(), 1e-8);
}

TEST_F(Applications, WorkAcrossOrderings) {
  const Matrix a = rank_deficient(16, 8, 3, rng_);
  for (const char* name : {"round-robin", "new-ring", "hybrid-g2"}) {
    EXPECT_EQ(numerical_rank(a, *make_ordering(name), 1e-9), 3u) << name;
  }
}

}  // namespace
}  // namespace treesvd
