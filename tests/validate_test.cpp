// Direct tests for the validation/analysis helpers in core/validate.hpp.
#include <gtest/gtest.h>

#include <numeric>

#include "core/odd_even.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

TEST(CommLevel, MatchesLcaHeight) {
  EXPECT_EQ(comm_level(0, 1), 0);   // same leaf
  EXPECT_EQ(comm_level(0, 2), 1);   // sibling leaves
  EXPECT_EQ(comm_level(1, 3), 1);
  EXPECT_EQ(comm_level(0, 4), 2);
  EXPECT_EQ(comm_level(0, 8), 3);
  EXPECT_EQ(comm_level(7, 8), 3);
  EXPECT_EQ(comm_level(5, 5), 0);
}

TEST(ValidateSweep, AcceptsAKnownGoodSweep) {
  const SweepValidation v = validate_sweep(RoundRobinOrdering().sweep(16));
  EXPECT_TRUE(v.valid);
  EXPECT_TRUE(v.error.empty());
}

TEST(ValidateSweep, DetectsRepeatedPair) {
  // Two identical steps: every pair of step 1 repeats.
  std::vector<std::vector<int>> layouts = {{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}};
  const Sweep s(std::move(layouts), {});
  const SweepValidation v = validate_sweep(s);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.error.find("twice"), std::string::npos);
}

TEST(ValidateSweep, DetectsIncompleteCoverage) {
  // One step of n = 4 covers 2 of the 6 pairs.
  std::vector<std::vector<int>> layouts = {{0, 1, 2, 3}, {0, 1, 2, 3}};
  const Sweep s(std::move(layouts), {});
  const SweepValidation v = validate_sweep(s);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.error.find("expected"), std::string::npos);
}

TEST(LevelHistogram, ConservesTotalMoves) {
  const Sweep s = OddEvenOrdering().sweep(16);
  const auto hist = level_histogram(s);
  std::size_t total_moves = 0;
  for (int t = 0; t < s.steps(); ++t) total_moves += s.moves(t).size();
  std::size_t counted = 0;
  for (std::size_t v : hist) counted += v;
  EXPECT_EQ(counted, total_moves);
}

TEST(LevelHistogram, NonPowerOfTwoLeafCountFitsTallestTransfer) {
  // Regression: with 3 leaves (n = 6) a transfer between leaves 2 and 0
  // crosses ceil(log2(3)) = 2 levels; the histogram used to size itself by
  // floor(log2) and write out of bounds.
  const Sweep s = RoundRobinOrdering().sweep(6);
  const auto hist = level_histogram(s);
  EXPECT_EQ(hist.size(), 3u);
  std::size_t total_moves = 0;
  for (int t = 0; t < s.steps(); ++t) total_moves += s.moves(t).size();
  std::size_t counted = 0;
  for (std::size_t v : hist) counted += v;
  EXPECT_EQ(counted, total_moves);
}

TEST(LevelHistogram, IntraLeafMovesLandInBucketZero) {
  // Round-robin's T_{m-1} -> B_{m-1} transition is intra-leaf.
  const Sweep s = RoundRobinOrdering().sweep(8);
  const auto hist = level_histogram(s);
  EXPECT_GT(hist[0], 0u);
}

TEST(Unidirectional, RoundRobinIsNot) {
  EXPECT_FALSE(unidirectional_ring_moves(RoundRobinOrdering().sweep(16)));
}

TEST(MovesPerIndex, RoundRobinMovesEveryoneButZero) {
  const Sweep s = RoundRobinOrdering().sweep(8);
  const auto moves = moves_per_index(s);
  EXPECT_EQ(moves[0], 0u);
  for (std::size_t i = 1; i < moves.size(); ++i) EXPECT_GT(moves[i], 0u);
}

TEST(MovesPerIndex, SumsMatchInterLeafMoveCount) {
  const Sweep s = OddEvenOrdering().sweep(12);
  const auto moves = moves_per_index(s);
  std::size_t from_moves = 0;
  for (int t = 0; t < s.steps(); ++t)
    for (const ColumnMove& mv : s.moves(t))
      if (mv.from_slot / 2 != mv.to_slot / 2) ++from_moves;
  EXPECT_EQ(std::accumulate(moves.begin(), moves.end(), std::size_t{0}), from_moves);
}

TEST(SweepSequence, ReportsFailingSweepIndex) {
  // The odd-even ordering is fine; sanity that the sequence validator loops.
  const SweepValidation ok = validate_sweep_sequence(OddEvenOrdering(), 8, 5);
  EXPECT_TRUE(ok.valid);
}

}  // namespace
}  // namespace treesvd
