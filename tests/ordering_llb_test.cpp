// Lee-Luk-Boley-style fat-tree ordering: the comparator with permuting
// forward sweeps and restoring backward sweeps (Section 3 discussion of [8]).
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/fat_tree.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

TEST(Llb, ForwardSweepPermutesIndices) {
  const Sweep s = LlbFatTreeOrdering().sweep(16, /*sweep_index=*/0);
  const auto fin = s.final_layout();
  bool identity = true;
  for (int i = 0; i < 16; ++i) identity = identity && fin[static_cast<std::size_t>(i)] == i;
  EXPECT_FALSE(identity) << "the LLB forward sweep must leave the indices permuted";
}

TEST(Llb, ForwardPlusBackwardRestores) {
  const LlbFatTreeOrdering llb;
  for (int n : {8, 16, 32, 64}) {
    std::vector<int> layout(static_cast<std::size_t>(n));
    std::iota(layout.begin(), layout.end(), 0);
    for (int k = 0; k < 2; ++k) {
      const Sweep s = llb.sweep_from(layout, k);
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
    }
    for (int i = 0; i < n; ++i) EXPECT_EQ(layout[static_cast<std::size_t>(i)], i) << "n=" << n;
  }
}

TEST(Llb, BackwardFirstStepRepeatsForwardLastPairs) {
  // "The first rotation in each backward sweep does nothing, and may be
  // omitted, because it operates on the same pair as the last rotation in the
  // preceding forward sweep."
  const LlbFatTreeOrdering llb;
  const int n = 16;
  const Sweep fwd = llb.sweep(n, 0);
  const auto fin = fwd.final_layout();
  const Sweep bwd = llb.sweep_from(fin, 1);

  auto keyset = [](const std::vector<IndexPair>& ps) {
    std::set<std::pair<int, int>> out;
    for (const auto& p : ps) out.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    return out;
  };
  EXPECT_EQ(keyset(fwd.pairs(fwd.steps() - 1)), keyset(bwd.pairs(0)));
}

TEST(Llb, BackwardRetracesForwardPairsInReverse) {
  const LlbFatTreeOrdering llb;
  const int n = 8;
  const Sweep fwd = llb.sweep(n, 0);
  const Sweep bwd = llb.sweep_from(fwd.final_layout(), 1);
  auto keyset = [](const std::vector<IndexPair>& ps) {
    std::set<std::pair<int, int>> out;
    for (const auto& p : ps) out.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    return out;
  };
  // Backward step t >= 1 repeats forward step S-1-t.
  for (int t = 1; t < bwd.steps(); ++t)
    EXPECT_EQ(keyset(bwd.pairs(t)), keyset(fwd.pairs(fwd.steps() - 1 - t))) << "t=" << t;
}

TEST(Llb, VariableSpacingBetweenPairRepetitions) {
  // The paper's convergence concern: under forward/backward alternation the
  // gap between successive rotations of the same pair varies (unlike the
  // restoring fat-tree ordering, where every pair recurs every n-1 steps).
  const LlbFatTreeOrdering llb;
  const int n = 8;
  std::vector<int> layout(static_cast<std::size_t>(n));
  std::iota(layout.begin(), layout.end(), 0);
  std::map<std::pair<int, int>, std::vector<int>> when;
  int clock = 0;
  for (int k = 0; k < 2; ++k) {
    const Sweep s = llb.sweep_from(layout, k);
    for (int t = 0; t < s.steps(); ++t, ++clock) {
      for (const auto& p : s.pairs(t))
        when[{std::min(p.even, p.odd), std::max(p.even, p.odd)}].push_back(clock);
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  std::set<int> gaps;
  for (const auto& [pair, times] : when) {
    ASSERT_EQ(times.size(), 2u);
    gaps.insert(times[1] - times[0]);
  }
  EXPECT_GT(gaps.size(), 1u) << "gaps should vary across pairs";
}

TEST(Llb, SameCommunicationStructureAsFatTree) {
  // The reconstruction shares the merge procedure, so the per-level move
  // totals of a forward sweep match the restoring ordering except for the
  // final restore transition.
  const Sweep llb = LlbFatTreeOrdering().sweep(32, 0);
  const Sweep ft = FatTreeOrdering().sweep(32);
  const auto h1 = level_histogram(llb);
  const auto h2 = level_histogram(ft);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t l = 0; l < h1.size(); ++l)
    EXPECT_LE(h1[l], h2[l]) << "llb should never move more than the restoring variant";
}

}  // namespace
}  // namespace treesvd
