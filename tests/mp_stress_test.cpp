// Contention stress for the message-passing runtime: many ranks hammering
// tagged send/recv, barriers and allreduce concurrently. Functionally these
// tests assert delivery and collective correctness; their main job is to give
// ThreadSanitizer dense interleavings over mp::World's mailboxes and sync
// state (this binary is the dedicated target of the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "mp/frame.hpp"
#include "mp/message_passing.hpp"
#include "svd/serve.hpp"
#include "util/rng.hpp"

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS
#include "analysis/fuzz.hpp"
#endif

namespace treesvd {
namespace {

/// Payload encoding so the receiver can verify exactly who sent what.
double encode(int src, int round, int k) { return src * 1e6 + round * 1e3 + k; }

TEST(MpStress, AllToAllTaggedRounds) {
  const int ranks = 8;
  const int rounds = 40;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    for (int round = 0; round < rounds; ++round) {
      const auto tag = static_cast<std::uint64_t>(round);
      for (int dst = 0; dst < ranks; ++dst)
        if (dst != me) ctx.send(dst, tag, {encode(me, round, 0)});
      for (int src = ranks - 1; src >= 0; --src) {
        if (src == me) continue;
        const auto msg = ctx.recv(src, tag);
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 0));
      }
    }
  });
  EXPECT_EQ(world.delivered(),
            static_cast<std::size_t>(ranks) * (ranks - 1) * static_cast<std::size_t>(rounds));
}

TEST(MpStress, PerTagFifoUnderInterleavedTags) {
  // Each rank floods its ring successor with messages across several tags in
  // one order and the successor drains them tag-by-tag in another; FIFO must
  // hold within each (src, tag) stream regardless of global interleaving.
  const int ranks = 6;
  const int per_tag = 25;
  const int tags = 4;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    const int dst = (me + 1) % ranks;
    const int src = (me + ranks - 1) % ranks;
    for (int k = 0; k < per_tag; ++k)
      for (int tag = 0; tag < tags; ++tag)
        ctx.send(dst, static_cast<std::uint64_t>(tag), {encode(me, tag, k)});
    for (int tag = tags - 1; tag >= 0; --tag) {
      for (int k = 0; k < per_tag; ++k) {
        const auto msg = ctx.recv(src, static_cast<std::uint64_t>(tag));
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_DOUBLE_EQ(msg[0], encode(src, tag, k));
      }
    }
  });
  EXPECT_EQ(world.delivered(), static_cast<std::size_t>(ranks) * per_tag * tags);
}

TEST(MpStress, BarrierSeparatesPhases) {
  // Ranks bump a per-phase counter, then barrier; after the barrier every
  // rank must observe the phase complete. A missed barrier or a racy
  // generation update shows up as a violation (and as a TSan report).
  const int ranks = 8;
  const int phases = 50;
  mp::World world(ranks);
  std::vector<std::atomic<int>> arrived(phases);
  std::atomic<int> violations{0};
  world.run([&](mp::Context& ctx) {
    for (int p = 0; p < phases; ++p) {
      arrived[static_cast<std::size_t>(p)].fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
      if (arrived[static_cast<std::size_t>(p)].load(std::memory_order_relaxed) != ranks)
        violations.fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(MpStress, AllreduceUnderTrafficIsExact) {
  // Interleave allreduce rounds with point-to-point chatter so collectives
  // and mailbox traffic contend for the world concurrently.
  const int ranks = 8;
  const int rounds = 30;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    const int dst = (me + 1) % ranks;
    const int src = (me + ranks - 1) % ranks;
    for (int round = 0; round < rounds; ++round) {
      ctx.send(dst, static_cast<std::uint64_t>(1000 + round), {encode(me, round, 1)});
      const double sum = ctx.allreduce_sum(static_cast<double>(me + 1));
      EXPECT_DOUBLE_EQ(sum, ranks * (ranks + 1) / 2.0);
      const auto msg = ctx.recv(src, static_cast<std::uint64_t>(1000 + round));
      EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 1));
    }
  });
}

// --- Chaos section: the reliable transport under a hostile fault plan, with
// --- many ranks contending. TSan runs this binary, so these interleavings
// --- also prove the injector/recovery paths race-free.

TEST(MpStressChaos, ReliableAllToAllUnderFaultsDeliversCleanPayloads) {
  // Fixed tag per (src, dst) stream so sequence numbers climb and drops,
  // duplicates, corruption and delays all land mid-stream. Every payload
  // must still arrive exactly once, in order, bit-clean — and the recovery
  // counters must come out identical on every run of the same seed.
  const int ranks = 6;
  const int rounds = 25;
  mp::RecoveryStats first;
  for (int run = 0; run < 3; ++run) {
    mp::World world(ranks);
    world.set_reliable({.enabled = true, .max_retries = 10});
    mp::FaultPlan plan;
    plan.enabled = true;
    plan.seed = 99;
    plan.drop_prob = 0.12;
    plan.duplicate_prob = 0.08;
    plan.corrupt_prob = 0.06;
    plan.delay_prob = 0.05;
    world.set_fault_plan(plan);
    world.run([&](mp::Context& ctx) {
      const int me = ctx.rank();
      for (int round = 0; round < rounds; ++round) {
        for (int dst = 0; dst < ranks; ++dst)
          if (dst != me) ctx.send(dst, 5, {encode(me, round, 0), static_cast<double>(round)});
        for (int src = 0; src < ranks; ++src) {
          if (src == me) continue;
          const auto msg = ctx.recv(src, 5);
          ASSERT_EQ(msg.size(), 2u);
          EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 0));
          EXPECT_DOUBLE_EQ(msg[1], static_cast<double>(round));
        }
      }
    });
    world.purge_leftovers();
    const mp::RecoveryStats stats = world.recovery_stats();
    if (run == 0) {
      first = stats;
      EXPECT_GT(stats.drops_seen, 0u);
      EXPECT_GT(stats.duplicates_injected, 0u);
      EXPECT_GT(stats.corruptions_injected, 0u);
      EXPECT_EQ(stats.corruptions_detected, stats.corruptions_injected);
      EXPECT_GT(stats.delays_seen, 0u);
      EXPECT_GT(stats.retries, 0u);
      EXPECT_GT(stats.resends, 0u);
      // Every injected duplicate is eventually suppressed (live or purged):
      // this program receives every message, so nothing else is left over.
      EXPECT_EQ(stats.duplicates_suppressed, stats.duplicates_injected);
    } else {
      EXPECT_TRUE(stats == first);
    }
  }
}

TEST(MpStressChaos, KillUnderLoadAbortsDeterministically) {
  // A rank dies mid-traffic; the world must join everyone and surface the
  // RankKilledError, never hang — under dense mailbox contention.
  const int ranks = 6;
  mp::World world(ranks);
  mp::FaultPlan plan;
  plan.enabled = true;
  plan.kill_rank = 3;
  plan.kill_at_op = 40;
  world.set_fault_plan(plan);
  EXPECT_THROW(world.run([&](mp::Context& ctx) {
                 const int me = ctx.rank();
                 const int dst = (me + 1) % ranks;
                 const int src = (me + ranks - 1) % ranks;
                 for (int round = 0; round < 100; ++round) {
                   ctx.send(dst, static_cast<std::uint64_t>(round), {encode(me, round, 0)});
                   const auto msg = ctx.recv(src, static_cast<std::uint64_t>(round));
                   EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 0));
                 }
               }),
               mp::RankKilledError);
  EXPECT_TRUE(world.aborted());
  EXPECT_EQ(world.recovery_stats().kills, 1u);
}

TEST(MpStressChaos, StallDelaysButNeverChangesResults) {
  const int ranks = 4;
  mp::World world(ranks);
  mp::FaultPlan plan;
  plan.enabled = true;
  plan.stall_rank = 1;
  plan.stall_at_op = 3;
  plan.stall_micros = 200;
  world.set_fault_plan(plan);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    for (int round = 0; round < 10; ++round) {
      ctx.send((me + 1) % ranks, static_cast<std::uint64_t>(round), {encode(me, round, 0)});
      const auto msg = ctx.recv((me + ranks - 1) % ranks, static_cast<std::uint64_t>(round));
      EXPECT_DOUBLE_EQ(msg[0], encode((me + ranks - 1) % ranks, round, 0));
    }
  });
  EXPECT_EQ(world.recovery_stats().stalls, 1u);
}

TEST(MpStress, MixedCollectivesAndRandomizedTraffic) {
  // Deterministic per-rank RNG picks who messages whom each round; every rank
  // replays every peer's choices so receives match sends exactly without any
  // out-of-band coordination — maximum concurrent pressure on the mailboxes,
  // barrier and reduce paths together.
  const int ranks = 10;
  const int rounds = 20;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    for (int round = 0; round < rounds; ++round) {
      std::vector<int> target(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        Rng rng(static_cast<std::uint64_t>(r * 7919 + round));
        target[static_cast<std::size_t>(r)] =
            (r + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks - 1)))) % ranks;
      }
      ctx.send(target[static_cast<std::size_t>(me)],
               static_cast<std::uint64_t>(round) << 8 | static_cast<std::uint64_t>(me),
               {encode(me, round, 2)});
      for (int src = 0; src < ranks; ++src) {
        if (target[static_cast<std::size_t>(src)] != me) continue;
        const auto msg =
            ctx.recv(src, static_cast<std::uint64_t>(round) << 8 | static_cast<std::uint64_t>(src));
        EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 2));
      }
      const double sum = ctx.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(ranks));
      ctx.barrier();
    }
  });
}

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS

// --- Fuzzed section: the same transport contracts under the seeded schedule
// --- fuzzer injecting yields at every send/recv/sync decision point. Fixed
// --- seeds keep any failure replayable.

TEST(MpStressFuzzed, AllToAllSurvivesPerturbedSchedules) {
  const int ranks = 6;
  const int rounds = 15;
  for (const std::uint64_t seed : {std::uint64_t{11}, std::uint64_t{2026}}) {
    analysis::FuzzPlan plan;
    plan.seed = seed;
    analysis::ScopedFuzzer fuzz(plan);
    mp::World world(ranks);
    world.run([&](mp::Context& ctx) {
      const int me = ctx.rank();
      for (int round = 0; round < rounds; ++round) {
        const auto tag = static_cast<std::uint64_t>(round);
        for (int dst = 0; dst < ranks; ++dst)
          if (dst != me) ctx.send(dst, tag, {encode(me, round, 0)});
        for (int src = ranks - 1; src >= 0; --src) {
          if (src == me) continue;
          const auto msg = ctx.recv(src, tag);
          ASSERT_EQ(msg.size(), 1u);
          EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 0));
        }
      }
    });
    EXPECT_EQ(world.delivered(),
              static_cast<std::size_t>(ranks) * (ranks - 1) * static_cast<std::size_t>(rounds))
        << "seed=" << seed;
    EXPECT_GT(fuzz->decisions(), 0u) << "fuzzer saw no transport decision points";
  }
}

TEST(MpStressFuzzed, BarriersAndAllreduceSurvivePerturbedSchedules) {
  const int ranks = 6;
  const int phases = 20;
  analysis::FuzzPlan plan;
  plan.seed = 404;
  analysis::ScopedFuzzer fuzz(plan);
  mp::World world(ranks);
  std::vector<std::atomic<int>> arrived(phases);
  std::atomic<int> violations{0};
  world.run([&](mp::Context& ctx) {
    for (int p = 0; p < phases; ++p) {
      arrived[static_cast<std::size_t>(p)].fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
      if (arrived[static_cast<std::size_t>(p)].load(std::memory_order_relaxed) != ranks)
        violations.fetch_add(1, std::memory_order_relaxed);
      const double sum = ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
      EXPECT_DOUBLE_EQ(sum, ranks * (ranks + 1) / 2.0);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(MpStressFuzzed, FaultPlanUnaffectedByFuzzSalt) {
  // The fuzzer's decision salt (hook_ops_) is deliberately separate from the
  // op counter that keys kill/stall fault schedules: the same fault plan must
  // fire at the same op with and without a fuzzer installed.
  const int ranks = 4;
  const auto run_once = [&](bool fuzzed) {
    mp::World world(ranks);
    mp::FaultPlan plan;
    plan.enabled = true;
    plan.kill_rank = 2;
    plan.kill_at_op = 17;
    world.set_fault_plan(plan);
    const auto program = [&](mp::Context& ctx) {
      const int me = ctx.rank();
      for (int round = 0; round < 50; ++round) {
        ctx.send((me + 1) % ranks, static_cast<std::uint64_t>(round), {1.0});
        (void)ctx.recv((me + ranks - 1) % ranks, static_cast<std::uint64_t>(round));
      }
    };
    if (fuzzed) {
      analysis::FuzzPlan fp;
      fp.seed = 7;
      analysis::ScopedFuzzer fuzz(fp);
      EXPECT_THROW(world.run(program), mp::RankKilledError);
    } else {
      EXPECT_THROW(world.run(program), mp::RankKilledError);
    }
    return world.recovery_stats().kills;
  };
  EXPECT_EQ(run_once(false), 1u);
  EXPECT_EQ(run_once(true), 1u);
}

#endif  // TREESVD_ANALYSIS

// ---------------------------------------------------------------------------
// Wire-frame decode fuzzing (socket backend). decode_wire_frame is the only
// code that parses bytes off a real socket, so it must classify *every*
// byte-stream correctly without ever reading out of bounds: truncations are
// kNeedMore, a corrupted payload is kBadPayload (skippable, NACKable), and
// anything that would desynchronise the stream — bad magic, bad header
// checksum, oversized length, unknown kind — is kBadFrame. Run these under
// ASan and the no-OOB claim is machine-checked.

std::vector<std::uint8_t> encode_one(const mp::WireFrame& f) {
  std::vector<std::uint8_t> bytes;
  mp::encode_wire_frame(f, bytes);
  return bytes;
}

mp::WireFrame sample_frame() {
  mp::WireFrame f;
  f.kind = mp::WireKind::kData;
  f.tag = 77;
  f.seq = 3;
  f.aux = 0;
  f.payload = {1.0, -2.5, 3.25, 1e-300};
  return f;
}

TEST(MpWireFuzz, CleanFrameRoundTrips) {
  const auto bytes = encode_one(sample_frame());
  mp::WireFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
            mp::WireDecode::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.kind, mp::WireKind::kData);
  EXPECT_EQ(out.tag, 77u);
  EXPECT_EQ(out.seq, 3u);
  EXPECT_EQ(out.payload, sample_frame().payload);
}

TEST(MpWireFuzz, EveryTruncationNeedsMore) {
  // A prefix of a valid frame must never decode, error, or consume bytes —
  // partial reads are the socket's normal case, not a fault.
  const auto bytes = encode_one(sample_frame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    mp::WireFrame out;
    std::size_t consumed = 99;
    EXPECT_EQ(mp::decode_wire_frame(bytes.data(), len, 1 << 20, &out, &consumed),
              mp::WireDecode::kNeedMore)
        << "at truncation " << len;
    EXPECT_EQ(consumed, 0u) << "at truncation " << len;
  }
}

TEST(MpWireFuzz, HeaderCorruptionIsBadFrame) {
  // Any flipped bit in the protected header region must be caught by the
  // header checksum (or the magic/kind checks) before the length is trusted.
  const auto clean = encode_one(sample_frame());
  for (std::size_t byte = 0; byte < 40; ++byte) {
    auto bytes = clean;
    bytes[byte] ^= 0x40;
    mp::WireFrame out;
    std::size_t consumed = 99;
    EXPECT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
              mp::WireDecode::kBadFrame)
        << "header byte " << byte;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(MpWireFuzz, PayloadCorruptionIsSkippable) {
  // Payload damage leaves the header trustworthy: the decoder reports
  // kBadPayload with the exact frame size so the caller can skip it and
  // NACK, keeping the stream synchronised.
  const auto clean = encode_one(sample_frame());
  for (std::size_t k = 0; k < sample_frame().payload.size(); ++k) {
    auto bytes = clean;
    bytes[mp::kWireHeaderBytes + k * sizeof(double)] ^= 0x01;
    mp::WireFrame out;
    std::size_t consumed = 0;
    EXPECT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
              mp::WireDecode::kBadPayload)
        << "payload double " << k;
    EXPECT_EQ(consumed, clean.size()) << "payload double " << k;
    EXPECT_EQ(out.tag, 77u);  // identity fields survive for the NACK
    EXPECT_EQ(out.seq, 3u);
  }
  // The injected-corruption encoder produces exactly this class.
  std::vector<std::uint8_t> bytes;
  mp::encode_corrupted_wire_frame(sample_frame(), {1.0, -2.5, 99.0, 1e-300}, bytes);
  mp::WireFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
            mp::WireDecode::kBadPayload);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(MpWireFuzz, OversizedLengthIsRejectedBeforeAllocation) {
  // A frame whose (checksum-valid) payload count exceeds the receiver's
  // bound is a desync, not an allocation: the cap is enforced after the
  // header proves intact but before any payload is touched.
  mp::WireFrame f = sample_frame();
  const auto bytes = encode_one(f);
  mp::WireFrame out;
  std::size_t consumed = 99;
  EXPECT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), f.payload.size() - 1, &out,
                                  &consumed),
            mp::WireDecode::kBadFrame);
  EXPECT_EQ(consumed, 0u);
}

TEST(MpWireFuzz, SeededGarbageNeverDecodesAndNeverReadsOob) {
  // 4096 random byte strings (lengths 0..255): none can carry a valid
  // header checksum, so every verdict must be kNeedMore (too short to rule
  // out) or kBadFrame — and ASan guards the no-OOB half of the claim. The
  // buffers are heap-allocated at exact length so any overread is poisoned.
  Rng rng(0xF0CCED);
  for (int it = 0; it < 4096; ++it) {
    const std::size_t len = static_cast<std::size_t>(rng.below(256));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    mp::WireFrame out;
    std::size_t consumed = 0;
    const auto verdict =
        mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed);
    EXPECT_TRUE(verdict == mp::WireDecode::kNeedMore || verdict == mp::WireDecode::kBadFrame);
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(MpWireFuzz, GarbageAfterValidFrameDoesNotBleedBack) {
  // Decoding consumes exactly one frame; trailing garbage is the next
  // iteration's problem and must not affect this frame's verdict.
  auto bytes = encode_one(sample_frame());
  const std::size_t frame_len = bytes.size();
  for (int junk = 0; junk < 64; ++junk) bytes.push_back(static_cast<std::uint8_t>(junk * 37));
  mp::WireFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
            mp::WireDecode::kOk);
  EXPECT_EQ(consumed, frame_len);
  EXPECT_EQ(out.payload, sample_frame().payload);
}

TEST(MpWireFuzz, PackStringRoundTripsThroughPayload) {
  // Error messages ride wire-frame payloads; the packing must be exact for
  // any content, including embedded NULs and non-ASCII bytes.
  const std::string cases[] = {"", "x", "mp[socket]: src=0 dst=1 tag=9 seq=4",
                               std::string("nul\0byte", 8), "\xc3\xa9\xf0\x9f\x9a\x80"};
  for (const std::string& s : cases) {
    EXPECT_EQ(mp::unpack_string(mp::pack_string(s)), s);
    mp::WireFrame f;
    f.kind = mp::WireKind::kError;
    f.aux = 3;
    f.payload = mp::pack_string(s);
    const auto bytes = encode_one(f);
    mp::WireFrame out;
    std::size_t consumed = 0;
    ASSERT_EQ(mp::decode_wire_frame(bytes.data(), bytes.size(), 1 << 20, &out, &consumed),
              mp::WireDecode::kOk);
    EXPECT_EQ(mp::unpack_string(out.payload), s);
  }
}

// ---------------------------------------------------------------------------
// Serving queue under fuzzed schedules. The serving front-end's
// BoundedMpscQueue is the other lock/condvar hot spot this binary targets:
// seeded schedules perturb producer pacing, consumer batch sizes, eviction
// cadence and the close point, and the invariant is conservation — every
// accepted item surfaces exactly once (popped or evicted), per-producer FIFO
// holds among the popped, and pop_batch reports exhaustion only after close.
// ---------------------------------------------------------------------------

TEST(ServeQueueFuzzed, ProducersEvictorAndCloseConserveItems) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 80;
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{77}, std::uint64_t{2026},
                                   std::uint64_t{31337}}) {
    BoundedMpscQueue<int> q(6);
    std::vector<std::vector<int>> accepted(kProducers);
    std::atomic<int> popped_count{0};
    std::atomic<int> producers_done{0};
    std::atomic<bool> closed_flag{false};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p, seed] {
        Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(p));
        for (int i = 0; i < kPerProducer; ++i) {
          const int v = p * 1000 + i;
          bool ok = false;
          // Seeded schedule: mix blocking and spinning admission, with
          // fuzzer-style yields between attempts.
          if (rng.below(3) == 0) {
            ok = q.push(v);
          } else {
            while (!(ok = q.try_push(v)) && !q.closed()) {
              if (rng.below(2) == 0) std::this_thread::yield();
            }
          }
          if (!ok) break;  // closed: this and all later pushes are dropped
          accepted[p].push_back(v);
          if (rng.below(4) == 0) std::this_thread::yield();
        }
        producers_done.fetch_add(1);
      });
    }

    // The evictor plays the shed path: remove a seeded value class while
    // producers and the consumer contend for the same lock.
    std::vector<int> evicted;
    std::thread evictor([&, seed] {
      Rng rng(seed ^ 0xE71C70ULL);
      const int klass = static_cast<int>(rng.below(7));
      while (!closed_flag.load()) {
        q.remove_if([klass](int v) { return v % 13 == klass; }, evicted);
        for (std::uint64_t k = rng.below(8); k > 0; --k) std::this_thread::yield();
      }
    });

    // The closer picks a seeded cut point; one seed closes immediately so the
    // everything-dropped edge stays covered, and a cut past the total item
    // count degrades to close-after-producers-finish instead of hanging.
    std::thread closer([&, seed] {
      Rng rng(seed + 17);
      const int cut = seed == 1 ? 0 : static_cast<int>(rng.below(kProducers * kPerProducer));
      while (popped_count.load() < cut && producers_done.load() < kProducers)
        std::this_thread::yield();
      q.close();
      closed_flag.store(true);
    });

    Rng consumer_rng(seed ^ 0xC0517ABULL);
    std::vector<int> popped;
    std::vector<int> batch;
    for (;;) {
      batch.clear();
      if (q.pop_batch(batch, 1 + consumer_rng.below(7)) == 0) break;
      popped.insert(popped.end(), batch.begin(), batch.end());
      popped_count.store(static_cast<int>(popped.size()));
      if (consumer_rng.below(3) == 0) std::this_thread::yield();
    }
    for (auto& t : producers) t.join();
    closed_flag.store(true);
    closer.join();
    evictor.join();
    for (;;) {  // residue pushed while close raced the last pops
      batch.clear();
      if (q.pop_batch(batch, 8) == 0) break;
      popped.insert(popped.end(), batch.begin(), batch.end());
    }

    std::multiset<int> in;
    for (const auto& a : accepted) in.insert(a.begin(), a.end());
    std::multiset<int> out(popped.begin(), popped.end());
    out.insert(evicted.begin(), evicted.end());
    EXPECT_EQ(in.size(), out.size()) << "seed=" << seed;
    EXPECT_EQ(in, out) << "seed=" << seed << ": conservation violated";
    for (int p = 0; p < kProducers; ++p) {
      int last = -1;
      for (const int v : popped) {
        if (v / 1000 != p) continue;
        EXPECT_LT(last, v) << "seed=" << seed << ": producer " << p << " FIFO violated";
        last = v;
      }
    }
  }
}

}  // namespace
}  // namespace treesvd
