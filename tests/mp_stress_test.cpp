// Contention stress for the message-passing runtime: many ranks hammering
// tagged send/recv, barriers and allreduce concurrently. Functionally these
// tests assert delivery and collective correctness; their main job is to give
// ThreadSanitizer dense interleavings over mp::World's mailboxes and sync
// state (this binary is the dedicated target of the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "mp/message_passing.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

/// Payload encoding so the receiver can verify exactly who sent what.
double encode(int src, int round, int k) { return src * 1e6 + round * 1e3 + k; }

TEST(MpStress, AllToAllTaggedRounds) {
  const int ranks = 8;
  const int rounds = 40;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    for (int round = 0; round < rounds; ++round) {
      const auto tag = static_cast<std::uint64_t>(round);
      for (int dst = 0; dst < ranks; ++dst)
        if (dst != me) ctx.send(dst, tag, {encode(me, round, 0)});
      for (int src = ranks - 1; src >= 0; --src) {
        if (src == me) continue;
        const auto msg = ctx.recv(src, tag);
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 0));
      }
    }
  });
  EXPECT_EQ(world.delivered(),
            static_cast<std::size_t>(ranks) * (ranks - 1) * static_cast<std::size_t>(rounds));
}

TEST(MpStress, PerTagFifoUnderInterleavedTags) {
  // Each rank floods its ring successor with messages across several tags in
  // one order and the successor drains them tag-by-tag in another; FIFO must
  // hold within each (src, tag) stream regardless of global interleaving.
  const int ranks = 6;
  const int per_tag = 25;
  const int tags = 4;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    const int dst = (me + 1) % ranks;
    const int src = (me + ranks - 1) % ranks;
    for (int k = 0; k < per_tag; ++k)
      for (int tag = 0; tag < tags; ++tag)
        ctx.send(dst, static_cast<std::uint64_t>(tag), {encode(me, tag, k)});
    for (int tag = tags - 1; tag >= 0; --tag) {
      for (int k = 0; k < per_tag; ++k) {
        const auto msg = ctx.recv(src, static_cast<std::uint64_t>(tag));
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_DOUBLE_EQ(msg[0], encode(src, tag, k));
      }
    }
  });
  EXPECT_EQ(world.delivered(), static_cast<std::size_t>(ranks) * per_tag * tags);
}

TEST(MpStress, BarrierSeparatesPhases) {
  // Ranks bump a per-phase counter, then barrier; after the barrier every
  // rank must observe the phase complete. A missed barrier or a racy
  // generation update shows up as a violation (and as a TSan report).
  const int ranks = 8;
  const int phases = 50;
  mp::World world(ranks);
  std::vector<std::atomic<int>> arrived(phases);
  std::atomic<int> violations{0};
  world.run([&](mp::Context& ctx) {
    for (int p = 0; p < phases; ++p) {
      arrived[static_cast<std::size_t>(p)].fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
      if (arrived[static_cast<std::size_t>(p)].load(std::memory_order_relaxed) != ranks)
        violations.fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(MpStress, AllreduceUnderTrafficIsExact) {
  // Interleave allreduce rounds with point-to-point chatter so collectives
  // and mailbox traffic contend for the world concurrently.
  const int ranks = 8;
  const int rounds = 30;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    const int dst = (me + 1) % ranks;
    const int src = (me + ranks - 1) % ranks;
    for (int round = 0; round < rounds; ++round) {
      ctx.send(dst, static_cast<std::uint64_t>(1000 + round), {encode(me, round, 1)});
      const double sum = ctx.allreduce_sum(static_cast<double>(me + 1));
      EXPECT_DOUBLE_EQ(sum, ranks * (ranks + 1) / 2.0);
      const auto msg = ctx.recv(src, static_cast<std::uint64_t>(1000 + round));
      EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 1));
    }
  });
}

TEST(MpStress, MixedCollectivesAndRandomizedTraffic) {
  // Deterministic per-rank RNG picks who messages whom each round; every rank
  // replays every peer's choices so receives match sends exactly without any
  // out-of-band coordination — maximum concurrent pressure on the mailboxes,
  // barrier and reduce paths together.
  const int ranks = 10;
  const int rounds = 20;
  mp::World world(ranks);
  world.run([&](mp::Context& ctx) {
    const int me = ctx.rank();
    for (int round = 0; round < rounds; ++round) {
      std::vector<int> target(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        Rng rng(static_cast<std::uint64_t>(r * 7919 + round));
        target[static_cast<std::size_t>(r)] =
            (r + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks - 1)))) % ranks;
      }
      ctx.send(target[static_cast<std::size_t>(me)],
               static_cast<std::uint64_t>(round) << 8 | static_cast<std::uint64_t>(me),
               {encode(me, round, 2)});
      for (int src = 0; src < ranks; ++src) {
        if (target[static_cast<std::size_t>(src)] != me) continue;
        const auto msg =
            ctx.recv(src, static_cast<std::uint64_t>(round) << 8 | static_cast<std::uint64_t>(src));
        EXPECT_DOUBLE_EQ(msg[0], encode(src, round, 2));
      }
      const double sum = ctx.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(ranks));
      ctx.barrier();
    }
  });
}

}  // namespace
}  // namespace treesvd
