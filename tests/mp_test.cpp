// Message-passing runtime and the SPMD Jacobi program.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <tuple>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "mp/message_passing.hpp"
#include "svd/spmd.hpp"

namespace treesvd {
namespace {

TEST(MessagePassing, PingPong) {
  mp::World world(2);
  world.run([](mp::Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0, 2.0, 3.0});
      const auto back = ctx.recv(1, 8);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      const auto msg = ctx.recv(0, 7);
      EXPECT_EQ(msg, (std::vector<double>{1.0, 2.0, 3.0}));
      ctx.send(0, 8, {msg[0] + msg[1] + msg[2]});
    }
  });
  EXPECT_EQ(world.delivered(), 2u);
}

TEST(MessagePassing, TaggedMessagesDoNotCross) {
  mp::World world(2);
  world.run([](mp::Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 100, {100.0});
      ctx.send(1, 200, {200.0});
      ctx.send(1, 100, {101.0});
    } else {
      // Receive out of send order by tag; FIFO within a tag.
      EXPECT_EQ(ctx.recv(0, 200), (std::vector<double>{200.0}));
      EXPECT_EQ(ctx.recv(0, 100), (std::vector<double>{100.0}));
      EXPECT_EQ(ctx.recv(0, 100), (std::vector<double>{101.0}));
    }
  });
}

TEST(MessagePassing, RingPass) {
  const int ranks = 8;
  mp::World world(ranks);
  world.run([ranks](mp::Context& ctx) {
    // Pass a token around the ring twice, incrementing at each hop.
    double value = 0.0;
    for (int round = 0; round < 2 * ranks; ++round) {
      const int holder = round % ranks;
      if (ctx.rank() == holder) {
        ctx.send((holder + 1) % ranks, static_cast<std::uint64_t>(round), {value + 1.0});
      }
      if (ctx.rank() == (holder + 1) % ranks) {
        value = ctx.recv(holder, static_cast<std::uint64_t>(round))[0];
      }
    }
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(value, 2.0 * ranks);
    }
  });
}

TEST(MessagePassing, BarrierSynchronises) {
  const int ranks = 6;
  mp::World world(ranks);
  std::atomic<int> before{0};
  std::atomic<bool> violation{false};
  world.run([&](mp::Context& ctx) {
    before.fetch_add(1);
    ctx.barrier();
    if (before.load() != ranks) violation.store(true);
  });
  EXPECT_FALSE(violation.load());
}

TEST(MessagePassing, AllreduceSum) {
  const int ranks = 5;
  mp::World world(ranks);
  world.run([](mp::Context& ctx) {
    for (int round = 1; round <= 3; ++round) {
      const double sum = ctx.allreduce_sum(static_cast<double>(ctx.rank() * round));
      EXPECT_DOUBLE_EQ(sum, round * (0 + 1 + 2 + 3 + 4));
    }
  });
}

TEST(MessagePassing, ExceptionsPropagate) {
  mp::World world(3);
  EXPECT_THROW(world.run([](mp::Context& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank 1 died");
                 // Other ranks return without collectives so nothing hangs.
               }),
               std::runtime_error);
}

TEST(MessagePassing, LowestRankFailureWins) {
  // When several ranks fail, run() joins everyone and rethrows the failure
  // from the lowest rank — the documented deterministic tie-break.
  mp::World world(4);
  try {
    world.run([](mp::Context& ctx) {
      if (ctx.rank() == 1) throw std::runtime_error("rank 1 boom");
      if (ctx.rank() == 3) throw std::logic_error("rank 3 boom");
    });
    FAIL() << "expected a rank failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 boom");
  }
}

TEST(MessagePassing, SecondarySurfacesOnlyWithoutPrimary) {
  // Rank 0 dies; rank 1, blocked on a message rank 0 never sends, unwinds
  // with the secondary WorldAbortedError — but run() reports the primary.
  mp::World world(2);
  try {
    world.run([](mp::Context& ctx) {
      if (ctx.rank() == 0) throw std::runtime_error("primary");
      ctx.recv(0, 1);  // never satisfiable
    });
    FAIL() << "expected the primary failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "primary");
  }
}

TEST(MessagePassing, SelfTrafficAndRangeChecksThrow) {
  // Fresh world per case: an aborted world stays aborted until replay-reset.
  EXPECT_THROW(
      mp::World(2).run([](mp::Context& ctx) {
        if (ctx.rank() == 0) ctx.send(0, 1, {1.0});  // send-to-self
      }),
      std::invalid_argument);
  EXPECT_THROW(
      mp::World(2).run([](mp::Context& ctx) {
        if (ctx.rank() == 1) static_cast<void>(ctx.recv(1, 1));  // recv-from-self
      }),
      std::invalid_argument);
  EXPECT_THROW(
      mp::World(2).run([](mp::Context& ctx) {
        if (ctx.rank() == 0) static_cast<void>(ctx.recv(-1, 1));  // src out of range
      }),
      std::invalid_argument);
}

// What the thrown misuse message starts with — the guards promise a precise
// diagnosis, not just "invalid argument".
void expect_misuse(const std::function<void()>& call, const std::string& needle) {
  try {
    call();
    FAIL() << "expected misuse guard for: " << needle;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(MessagePassing, ResetForReplayOnHealthyWorldThrows) {
  // A world that never aborted has nothing to rearm; treating it as a
  // replay target would silently mask a missing failure.
  mp::World world(2);
  expect_misuse([&] { world.reset_for_replay(); }, "the world never aborted");
  world.run([](mp::Context&) {});
  expect_misuse([&] { world.reset_for_replay(); }, "the world never aborted");
}

TEST(MessagePassing, ResetForReplayTwiceThrows) {
  mp::World world(2);
  EXPECT_THROW(world.run([](mp::Context& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  ASSERT_TRUE(world.aborted());
  world.reset_for_replay();  // first reset rearms...
  EXPECT_FALSE(world.aborted());
  // ...and the second finds a healthy world: same guard as never-aborted.
  expect_misuse([&] { world.reset_for_replay(); }, "the world never aborted");
}

TEST(MessagePassing, ResetForReplayMidRunThrows) {
  // Calling maintenance entry points from inside a live program is the
  // classic footgun; the guard names the fix (join the run first).
  mp::World world(2);
  world.run([&world](mp::Context& ctx) {
    if (ctx.rank() == 0) {
      expect_misuse([&] { world.reset_for_replay(); }, "a run is in progress");
      expect_misuse([&] { world.purge_leftovers(); }, "a run is in progress");
    }
  });
}

TEST(MessagePassing, RunOnAbortedWorldThrows) {
  mp::World world(2);
  EXPECT_THROW(world.run([](mp::Context& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  ASSERT_TRUE(world.aborted());
  expect_misuse([&] { world.run([](mp::Context&) {}); },
                "reset_for_replay() must rearm an aborted world");
}

TEST(MessagePassing, PurgeLeftoversMisusePaths) {
  // Without the reliable transport there are no leftovers to purge.
  {
    mp::World world(2);
    world.run([](mp::Context&) {});
    expect_misuse([&] { world.purge_leftovers(); }, "only meaningful under the reliable");
  }
  mp::World world(2);
  mp::ReliableConfig rc;
  rc.enabled = true;
  world.set_reliable(rc);
  // Before any run completed there is nothing to purge either.
  expect_misuse([&] { world.purge_leftovers(); }, "no run completed");
  world.run([](mp::Context&) {});
  world.purge_leftovers();  // legitimate: one completed run, one purge
  // Purging twice without a new run in between is a sequencing bug.
  expect_misuse([&] { world.purge_leftovers(); }, "no run completed");
}

TEST(MessagePassing, PurgeLeftoversOnAbortedWorldThrows) {
  // An aborted world is reset_for_replay's territory; purging it would
  // destroy the evidence (and the replay source) in one call.
  mp::World world(2);
  mp::ReliableConfig rc;
  rc.enabled = true;
  world.set_reliable(rc);
  EXPECT_THROW(world.run([](mp::Context& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  ASSERT_TRUE(world.aborted());
  expect_misuse([&] { world.purge_leftovers(); }, "the world is aborted");
}

using Param = std::tuple<std::string, int>;

class SpmdAcrossOrderings : public ::testing::TestWithParam<Param> {};

TEST_P(SpmdAcrossOrderings, BitwiseMatchesSerialEngine) {
  const auto& [name, n] = GetParam();
  const auto ord = make_ordering(name);
  if (!ord->supports(n)) GTEST_SKIP();
  Rng rng(321);
  const Matrix a = random_gaussian(static_cast<std::size_t>(n + 8), static_cast<std::size_t>(n),
                                   rng);
  SpmdStats stats;
  const SvdResult spmd = spmd_jacobi(a, *ord, {}, &stats);
  const SvdResult serial = one_sided_jacobi(a, *ord);
  ASSERT_TRUE(spmd.converged);
  EXPECT_EQ(spmd.sweeps, serial.sweeps);
  EXPECT_EQ(spmd.rotations, serial.rotations);
  EXPECT_EQ(spmd.swaps, serial.swaps);
  for (std::size_t k = 0; k < serial.sigma.size(); ++k)
    EXPECT_EQ(spmd.sigma[k], serial.sigma[k]);
  EXPECT_EQ(spmd.u, serial.u);
  EXPECT_EQ(spmd.v, serial.v);
  EXPECT_GT(stats.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, SpmdAcrossOrderings,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "new-ring",
                                         "hybrid-g2"),
                       ::testing::Values(8, 16)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_n" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Spmd, MessageCountMatchesSchedule) {
  // Every inter-leaf move of every executed sweep is exactly one message.
  Rng rng(322);
  const int n = 8;
  const Matrix a = random_gaussian(12, static_cast<std::size_t>(n), rng);
  const auto ord = make_ordering("new-ring");
  SpmdStats stats;
  const SvdResult r = spmd_jacobi(a, *ord, {}, &stats);
  ASSERT_TRUE(r.converged);
  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) layout[static_cast<std::size_t>(i)] = i;
  std::size_t expected = 0;
  for (int k = 0; k < r.sweeps; ++k) {
    const Sweep s = ord->sweep_from(layout, k);
    for (int t = 0; t < s.steps(); ++t)
      for (const ColumnMove& mv : s.moves(t))
        if (mv.from_slot / 2 != mv.to_slot / 2) ++expected;
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  EXPECT_EQ(stats.messages, expected);
}

TEST(Spmd, PaddedWidthStillWorks) {
  Rng rng(323);
  const Matrix a = random_gaussian(14, 6, rng);  // fat-tree pads 6 -> 8
  const SvdResult r = spmd_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

}  // namespace
}  // namespace treesvd
