// Chaos tolerance: deterministic fault injection against the SPMD Jacobi
// and the distributed tree machine. The central contract (the ISSUE's
// acceptance bar): under a seeded plan mixing drops, duplicates, corruption
// and a rank kill, the reliable transport + sweep-checkpoint recovery make
// the run *bit-identical* to the fault-free one, with exactly reproducible
// RecoveryStats across repeated runs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "sim/distributed.hpp"
#include "svd/spmd.hpp"

namespace treesvd {
namespace {

void expect_bit_identical(const SvdResult& got, const SvdResult& want) {
  EXPECT_EQ(got.sweeps, want.sweeps);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.rotations, want.rotations);
  EXPECT_EQ(got.swaps, want.swaps);
  ASSERT_EQ(got.sigma.size(), want.sigma.size());
  for (std::size_t k = 0; k < want.sigma.size(); ++k) EXPECT_EQ(got.sigma[k], want.sigma[k]);
  EXPECT_EQ(got.u, want.u);
  EXPECT_EQ(got.v, want.v);
  EXPECT_EQ(got.kernel_stats.pairs, want.kernel_stats.pairs);
  EXPECT_EQ(got.kernel_stats.dot_passes, want.kernel_stats.dot_passes);
  EXPECT_EQ(got.kernel_stats.gram_passes, want.kernel_stats.gram_passes);
  EXPECT_EQ(got.kernel_stats.rotate_passes, want.kernel_stats.rotate_passes);
  EXPECT_EQ(got.kernel_stats.norm_refreshes, want.kernel_stats.norm_refreshes);
}

/// The acceptance plan: >=10% drops plus duplication, corruption and one
/// rank kill, all from one seed.
SpmdTransport acceptance_transport() {
  SpmdTransport t;
  t.reliable.enabled = true;
  t.faults.enabled = true;
  t.faults.seed = 42;
  t.faults.drop_prob = 0.12;
  t.faults.duplicate_prob = 0.08;
  t.faults.corrupt_prob = 0.06;
  t.faults.delay_prob = 0.04;
  t.faults.kill_rank = 2;
  t.faults.kill_at_op = 31;
  t.recovery.checkpoint_sweeps = 1;
  t.recovery.max_rollbacks = 8;
  return t;
}

TEST(SpmdChaos, SurvivingPlanIsBitIdenticalToFaultFree) {
  Rng rng(901);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult baseline = spmd_jacobi(a, *ord);

  const SpmdTransport t = acceptance_transport();
  mp::RecoveryStats first_stats;
  for (int run = 0; run < 3; ++run) {
    SpmdStats stats;
    const SvdResult r = spmd_jacobi(a, *ord, {}, &stats, &t);
    expect_bit_identical(r, baseline);
    if (run == 0) {
      first_stats = stats.recovery;
      // The plan actually bit: every fault class fired and was recovered.
      EXPECT_GT(stats.recovery.drops_seen, 0u);
      EXPECT_GT(stats.recovery.duplicates_injected, 0u);
      EXPECT_GE(stats.recovery.corruptions_injected, 1u);
      EXPECT_GE(stats.recovery.corruptions_detected, 1u);
      EXPECT_GT(stats.recovery.retries, 0u);
      EXPECT_GT(stats.recovery.resends, 0u);
      EXPECT_GT(stats.recovery.virtual_backoff, 0.0);
      EXPECT_EQ(stats.recovery.kills, 1u);
      EXPECT_GE(stats.recovery.rollbacks, 1u);
      EXPECT_GT(stats.recovery.checkpoints, 0u);
      EXPECT_GT(stats.recovery.duplicates_suppressed, 0u);
    } else {
      // Same seed => exactly the same counters, bit for bit.
      EXPECT_TRUE(stats.recovery == first_stats);
    }
  }
}

TEST(SpmdChaos, ReliableTransportAloneIsTransparent) {
  Rng rng(902);
  const Matrix a = random_gaussian(14, 8, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult baseline = spmd_jacobi(a, *ord);
  SpmdTransport t;
  t.reliable.enabled = true;
  SpmdStats stats;
  const SvdResult r = spmd_jacobi(a, *ord, {}, &stats, &t);
  expect_bit_identical(r, baseline);
  EXPECT_EQ(stats.recovery.drops_seen, 0u);
  EXPECT_EQ(stats.recovery.retries, 0u);
  EXPECT_EQ(stats.recovery.rollbacks, 0u);
  EXPECT_GT(stats.recovery.checkpoints, 0u);  // checkpointing defaults on
}

TEST(SpmdChaos, MessageFaultsAloneAreBitIdentical) {
  // No kill: exercises the pure transport story (drop/dup/corrupt/delay)
  // without any rollback.
  Rng rng(903);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("round-robin");
  const SvdResult baseline = spmd_jacobi(a, *ord);
  SpmdTransport t;
  t.reliable.enabled = true;
  t.faults.enabled = true;
  t.faults.seed = 7;
  t.faults.drop_prob = 0.15;
  t.faults.duplicate_prob = 0.1;
  t.faults.corrupt_prob = 0.08;
  SpmdStats stats;
  const SvdResult r = spmd_jacobi(a, *ord, {}, &stats, &t);
  expect_bit_identical(r, baseline);
  EXPECT_EQ(stats.recovery.kills, 0u);
  EXPECT_EQ(stats.recovery.rollbacks, 0u);
  EXPECT_GT(stats.recovery.drops_seen, 0u);
}

TEST(SpmdChaos, KillWithoutCheckpointingIsFatal) {
  Rng rng(904);
  const Matrix a = random_gaussian(12, 8, rng);
  SpmdTransport t;
  t.faults.enabled = true;
  t.faults.kill_rank = 1;
  t.faults.kill_at_op = 5;
  t.recovery.checkpoint_sweeps = 0;  // recovery disabled
  EXPECT_THROW(spmd_jacobi(a, *make_ordering("new-ring"), {}, nullptr, &t),
               mp::RankKilledError);
}

TEST(SpmdChaos, RetryBudgetExhaustionThrowsTransportError) {
  Rng rng(905);
  const Matrix a = random_gaussian(12, 8, rng);
  SpmdTransport t;
  t.reliable.enabled = true;
  t.reliable.max_retries = 2;
  t.faults.enabled = true;
  t.faults.drop_prob = 1.0;         // every first transmission lost
  t.faults.resend_drop_prob = 1.0;  // every retransmission lost too
  EXPECT_THROW(spmd_jacobi(a, *make_ordering("new-ring"), {}, nullptr, &t), mp::TransportError);
}

TEST(SpmdChaos, WatchdogTripsAndRunStillConverges) {
  // Early Jacobi sweeps rotate nearly every pair, so sweep activity is flat
  // — a window-1 watchdog must trip there, force a norm re-reduction, and
  // the run must still converge to an accurate factorization.
  Rng rng(906);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("fat-tree");
  SpmdTransport t;
  t.recovery.watchdog_sweeps = 1;
  SpmdStats stats;
  const SvdResult r = spmd_jacobi(a, *ord, {}, &stats, &t);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(stats.recovery.watchdog_trips, 0u);
  EXPECT_GT(stats.recovery.norm_rereductions, 0u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
  // And the trips themselves are deterministic.
  SpmdStats again;
  const SvdResult r2 = spmd_jacobi(a, *ord, {}, &again, &t);
  expect_bit_identical(r2, r);
  EXPECT_TRUE(again.recovery == stats.recovery);
}

TEST(DistributedChaosTest, KillRollbackReplayIsBitIdentical) {
  Rng rng(907);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("fat-tree");
  const FatTreeTopology topo(4, CapacityProfile::kCm5);
  const DistributedResult baseline = distributed_jacobi(a, *ord, topo);

  DistributedChaos chaos;
  chaos.faults.enabled = true;
  chaos.faults.kill_rank = 1;
  chaos.faults.kill_at_op = 9;
  const DistributedResult r = distributed_jacobi(a, *ord, topo, {}, {}, &chaos);
  expect_bit_identical(r.svd, baseline.svd);
  // The machine costs replay identically too (the checkpoint restores them).
  EXPECT_EQ(r.cost.total_time, baseline.cost.total_time);
  EXPECT_EQ(r.cost.comm_words, baseline.cost.comm_words);
  EXPECT_EQ(r.delivered_messages, baseline.delivered_messages);
  EXPECT_EQ(r.delivered_words, baseline.delivered_words);
  EXPECT_EQ(r.recovery.kills, 1u);
  EXPECT_EQ(r.recovery.rollbacks, 1u);
  EXPECT_GT(r.recovery.checkpoints, 0u);
}

TEST(DistributedChaosTest, CachedNormCorruptionIsRepaired) {
  // hsq corruption repair is numerically sound but not bitwise (a fresh
  // reduction differs in ulps from the travelled fused-kernel value), so the
  // contract here is detection + convergence + accuracy + determinism.
  Rng rng(908);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("fat-tree");
  const FatTreeTopology topo(4, CapacityProfile::kCm5);
  DistributedChaos chaos;
  chaos.faults.enabled = true;
  chaos.faults.seed = 12;
  chaos.faults.corrupt_prob = 0.3;
  const DistributedResult r = distributed_jacobi(a, *ord, topo, {}, {}, &chaos);
  ASSERT_TRUE(r.svd.converged);
  EXPECT_GT(r.recovery.corruptions_injected, 0u);
  EXPECT_GT(r.recovery.norm_rereductions, 0u);
  EXPECT_LT(reconstruction_error(a, r.svd.u, r.svd.sigma, r.svd.v) / a.frobenius_norm(), 1e-12);
  const DistributedResult r2 = distributed_jacobi(a, *ord, topo, {}, {}, &chaos);
  expect_bit_identical(r2.svd, r.svd);
  EXPECT_TRUE(r2.recovery == r.recovery);
}

TEST(DistributedChaosTest, KillWithoutCheckpointingIsFatal) {
  Rng rng(909);
  const Matrix a = random_gaussian(16, 8, rng);
  const FatTreeTopology topo(4, CapacityProfile::kCm5);
  DistributedChaos chaos;
  chaos.faults.enabled = true;
  chaos.faults.kill_rank = 0;
  chaos.faults.kill_at_op = 3;
  chaos.recovery.checkpoint_sweeps = 0;
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), topo, {}, {}, &chaos),
               mp::RankKilledError);
}

TEST(DistributedChaosTest, RejectsFaultsNeedingRealTransport) {
  Rng rng(910);
  const Matrix a = random_gaussian(16, 8, rng);
  const FatTreeTopology topo(4, CapacityProfile::kCm5);
  DistributedChaos chaos;
  chaos.faults.enabled = true;
  chaos.faults.drop_prob = 0.1;
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), topo, {}, {}, &chaos),
               std::invalid_argument);
  chaos.faults.drop_prob = 0.0;
  chaos.faults.stall_rank = 1;
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), topo, {}, {}, &chaos),
               std::invalid_argument);
  chaos.faults.stall_rank = -1;
  chaos.faults.kill_rank = 99;  // out of range for 4 leaves
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), topo, {}, {}, &chaos),
               std::invalid_argument);
}

TEST(SpmdChaos, StallIsHarmlessAndCounted) {
  Rng rng(911);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult baseline = spmd_jacobi(a, *ord);
  SpmdTransport t;
  t.faults.enabled = true;
  t.faults.stall_rank = 0;
  t.faults.stall_at_op = 4;
  t.faults.stall_micros = 500;
  SpmdStats stats;
  const SvdResult r = spmd_jacobi(a, *ord, {}, &stats, &t);
  expect_bit_identical(r, baseline);
  EXPECT_EQ(stats.recovery.stalls, 1u);
}

}  // namespace
}  // namespace treesvd
