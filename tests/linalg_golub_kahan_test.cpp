// Golub-Kahan bidiagonalization SVD (the second, non-squaring oracle).
#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/golub_kahan.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {
namespace {

TEST(GolubKahan, BidiagonalizePreservesSingularValues) {
  Rng rng(81);
  const Matrix a = random_gaussian(20, 8, rng);
  const Bidiagonal b = bidiagonalize(a);
  // Rebuild the bidiagonal as a dense matrix, compare spectra via the
  // squared oracle (adequate at this conditioning).
  Matrix dense(8, 8);
  for (std::size_t k = 0; k < 8; ++k) {
    dense(k, k) = b.diag[k];
    if (k > 0) dense(k - 1, k) = b.super[k];
  }
  const auto sa = singular_values_oracle(a);
  const auto sb = singular_values_oracle(dense);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_NEAR(sa[k], sb[k], 1e-10);
}

TEST(GolubKahan, DiagonalMatrixIsExact) {
  Matrix d(5, 5);
  const double vals[5] = {7, 3, 2, 0.5, 0.125};
  for (int i = 0; i < 5; ++i) d(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = vals[i];
  const auto sv = golub_kahan_singular_values(d);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(sv[static_cast<std::size_t>(i)], vals[i]);
}

TEST(GolubKahan, NegativeDiagonalEntriesYieldPositiveSigma) {
  Matrix d(3, 3);
  d(0, 0) = -4;
  d(1, 1) = 2;
  d(2, 2) = -1;
  const auto sv = golub_kahan_singular_values(d);
  EXPECT_NEAR(sv[0], 4.0, 1e-14);
  EXPECT_NEAR(sv[1], 2.0, 1e-14);
  EXPECT_NEAR(sv[2], 1.0, 1e-14);
}

TEST(GolubKahan, MatchesQlOracleAtModerateConditioning) {
  Rng rng(82);
  const Matrix a = random_gaussian(40, 16, rng);
  const auto gk = golub_kahan_singular_values(a);
  const auto ql = singular_values_oracle(a);
  for (std::size_t k = 0; k < 16; ++k) EXPECT_NEAR(gk[k], ql[k], 1e-10);
}

TEST(GolubKahan, ResolvesTinySingularValuesWhereTheSquaredOracleCannot) {
  Rng rng(83);
  const auto spec = geometric_spectrum(12, 1e12);
  const Matrix a = with_spectrum(24, 12, spec, rng);
  const auto gk = golub_kahan_singular_values(a);
  const auto ql = singular_values_oracle(a);
  // At sigma ~ 1e-9 (below sqrt(eps)) the squared oracle has O(1) relative
  // error while Golub-Kahan still resolves the value.
  const std::size_t k = 8;  // spec[8] ~ 1.9e-9
  EXPECT_LT(std::fabs(gk[k] - spec[k]) / spec[k], 1e-4);
  EXPECT_GT(std::fabs(ql[k] - spec[k]) / spec[k], 1e-2);
}

TEST(GolubKahan, JacobiMatchesGolubKahanOnGradedSpectra) {
  // The classical high-relative-accuracy property of one-sided Jacobi:
  // it tracks the non-squaring reference far below sqrt(eps).
  Rng rng(84);
  const auto spec = geometric_spectrum(12, 1e12);
  const Matrix a = with_spectrum(24, 12, spec, rng);
  const auto gk = golub_kahan_singular_values(a);
  const SvdResult j = one_sided_jacobi(a, *make_ordering("fat-tree"));
  for (std::size_t k = 0; k < 12; ++k)
    EXPECT_LT(std::fabs(j.sigma[k] - gk[k]) / gk[k], 1e-5) << "k=" << k;
}

TEST(GolubKahan, RankDeficient) {
  Rng rng(85);
  const Matrix a = rank_deficient(20, 10, 4, rng);
  const auto sv = golub_kahan_singular_values(a);
  for (std::size_t k = 4; k < 10; ++k) EXPECT_LT(sv[k], 1e-12);
  EXPECT_GT(sv[3], 1e-3);
}

TEST(GolubKahan, SquareAndSingleColumn) {
  Rng rng(86);
  const Matrix sq = random_gaussian(9, 9, rng);
  const auto s1 = golub_kahan_singular_values(sq);
  const auto s2 = singular_values_oracle(sq);
  for (std::size_t k = 0; k < 9; ++k) EXPECT_NEAR(s1[k], s2[k], 1e-10);

  Matrix col(5, 1);
  for (std::size_t i = 0; i < 5; ++i) col(i, 0) = 2.0;
  const auto sv = golub_kahan_singular_values(col);
  ASSERT_EQ(sv.size(), 1u);
  EXPECT_NEAR(sv[0], 2.0 * std::sqrt(5.0), 1e-13);
}

TEST(GolubKahan, RejectsWide) {
  EXPECT_THROW(bidiagonalize(Matrix(3, 5)), std::invalid_argument);
}

}  // namespace
}  // namespace treesvd
