// Multi-process socket backend: every rank its own OS process over
// UNIX-domain sockets, same World API, same bitwise guarantees. These tests
// cover the transport itself (ring traffic, collectives, the durable blob
// board), the cross-backend bit-identity contract for the SPMD engine, the
// error-context contract of TransportError, and the physical fault paths:
// injected drops/duplicates/corruption/delays on real connections, a planned
// SIGKILL with respawn + checkpoint rollback, and an *external* SIGKILL of a
// live rank process surfacing as RankKilledError.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "mp/message_passing.hpp"
#include "svd/determinism.hpp"
#include "svd/spmd.hpp"

// The backend forks rank processes out of a multithreaded test binary; TSan
// instruments the fork but cannot follow the children, so the suite skips
// itself under TSan (the in-process backend carries the TSan coverage).
#if defined(__SANITIZE_THREAD__)
#define TREESVD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TREESVD_TSAN 1
#endif
#endif
#ifndef TREESVD_TSAN
#define TREESVD_TSAN 0
#endif

#define SKIP_UNDER_TSAN() \
  if (TREESVD_TSAN) GTEST_SKIP() << "socket backend forks rank processes; skipped under TSan"

namespace treesvd {
namespace {

TEST(SocketBackend, RingExchangeCollectivesAndPublish) {
  SKIP_UNDER_TSAN();
  const int ranks = 4;
  mp::World world(ranks);
  world.set_backend(mp::Backend::kSocket);
  world.run([](mp::Context& ctx) {
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    ctx.send(next, 7, {static_cast<double>(ctx.rank()), 1.5});
    const auto got = ctx.recv(prev, 7);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], static_cast<double>(prev));
    EXPECT_EQ(got[1], 1.5);
    // Collectives are launcher-mediated and summed in rank order, so the
    // result is deterministic (and exact here).
    EXPECT_EQ(ctx.allreduce_sum(static_cast<double>(ctx.rank())), 6.0);
    ctx.barrier();
    // The blob board is the only rank state that survives process exit.
    ctx.publish(100 + static_cast<std::uint64_t>(ctx.rank()),
                {static_cast<double>(ctx.rank()) * 10.0});
  });
  for (int r = 0; r < ranks; ++r) {
    const auto blob = world.published(100 + static_cast<std::uint64_t>(r));
    ASSERT_EQ(blob.size(), 1u);
    EXPECT_EQ(blob[0], r * 10.0);
  }
  EXPECT_EQ(world.delivered(), static_cast<std::size_t>(ranks));
  // No run live: no rank has a process id.
  EXPECT_EQ(world.process_id(0), 0);
}

TEST(SocketBackend, SpmdBitwiseMatchesInproc) {
  SKIP_UNDER_TSAN();
  Rng rng(321);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult inproc = spmd_jacobi(a, *ord);

  SpmdTransport transport;
  transport.backend = mp::Backend::kSocket;
  SpmdStats stats;
  const SvdResult socket = spmd_jacobi(a, *ord, {}, &stats, &transport);

  ASSERT_TRUE(socket.converged);
  EXPECT_EQ(socket.sweeps, inproc.sweeps);
  for (std::size_t k = 0; k < inproc.sigma.size(); ++k)
    EXPECT_EQ(socket.sigma[k], inproc.sigma[k]);
  EXPECT_EQ(socket.u, inproc.u);
  EXPECT_EQ(socket.v, inproc.v);
  EXPECT_EQ(result_core_digest(socket), result_core_digest(inproc));
  EXPECT_EQ(result_digest(socket), result_digest(inproc));
}

TEST(SocketBackend, TransportErrorCarriesContext) {
  SKIP_UNDER_TSAN();
  // Every frame and every resend is dropped, so the receiver must exhaust
  // its retry budget; the error names backend, endpoints, tag, seq and the
  // attempt count — the satellite-1 contract.
  mp::World world(2);
  mp::SocketConfig sc;
  sc.recv_deadline_ms = 5.0;  // keep the retry ladder fast
  world.set_backend(mp::Backend::kSocket, sc);
  mp::ReliableConfig rc;
  rc.enabled = true;
  rc.max_retries = 3;
  world.set_reliable(rc);
  mp::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 7;
  plan.drop_prob = 1.0;
  world.set_fault_plan(plan);
  try {
    world.run([](mp::Context& ctx) {
      if (ctx.rank() == 0) ctx.send(1, 42, {1.0});
      if (ctx.rank() == 1) static_cast<void>(ctx.recv(0, 42));
    });
    FAIL() << "expected the retry budget to exhaust";
  } catch (const mp::TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mp[socket]"), std::string::npos) << what;
    EXPECT_NE(what.find("src=0"), std::string::npos) << what;
    EXPECT_NE(what.find("dst=1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=42"), std::string::npos) << what;
    EXPECT_NE(what.find("seq="), std::string::npos) << what;
    EXPECT_NE(what.find("3 attempts"), std::string::npos) << what;
  }
  EXPECT_TRUE(world.aborted());
}

TEST(SocketBackend, PhysicalFaultsStillBitIdentical) {
  SKIP_UNDER_TSAN();
  // Drops close real connections, delays really stall, corruption really
  // flips bytes on the wire — and the result must not move a bit.
  Rng rng(321);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult reference = spmd_jacobi(a, *ord);

  SpmdTransport transport;
  transport.backend = mp::Backend::kSocket;
  transport.reliable.enabled = true;
  transport.reliable.max_retries = 12;
  transport.faults.enabled = true;
  transport.faults.seed = 2026;
  transport.faults.drop_prob = 0.10;
  transport.faults.duplicate_prob = 0.06;
  transport.faults.corrupt_prob = 0.06;
  transport.faults.delay_prob = 0.02;
  SpmdStats stats;
  const SvdResult chaotic = spmd_jacobi(a, *ord, {}, &stats, &transport);

  EXPECT_EQ(result_digest(chaotic), result_digest(reference));
  // Fault decisions hash the message identity, so with this seed the plan
  // demonstrably fired (exact counts are pinned by the injector, not timing).
  EXPECT_GT(stats.recovery.drops_seen, 0u);
  EXPECT_GT(stats.recovery.corruptions_detected, 0u);
  EXPECT_GT(stats.recovery.resends, 0u);
}

TEST(SocketBackend, KillRespawnRollbackBitIdentical) {
  SKIP_UNDER_TSAN();
  // A planned kill SIGKILLs a live rank process mid-run; the engine respawns
  // the world, rolls back to the last sweep checkpoint every rank committed,
  // and the replay reproduces the fault-free result bit-for-bit.
  Rng rng(321);
  const Matrix a = random_gaussian(16, 8, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult reference = spmd_jacobi(a, *ord);

  SpmdTransport transport;
  transport.backend = mp::Backend::kSocket;
  transport.reliable.enabled = true;
  transport.faults.enabled = true;
  transport.faults.kill_rank = 1;
  transport.faults.kill_at_op = 9;
  transport.recovery.checkpoint_sweeps = 1;
  transport.recovery.max_rollbacks = 4;
  SpmdStats stats;
  const SvdResult survived = spmd_jacobi(a, *ord, {}, &stats, &transport);

  EXPECT_EQ(result_digest(survived), result_digest(reference));
  EXPECT_EQ(stats.recovery.kills, 1u);
  EXPECT_GE(stats.recovery.rollbacks, 1u);
  EXPECT_GT(stats.recovery.checkpoints, 0u);
}

TEST(SocketBackend, ExternalSigkillSurfacesAsRankKilled) {
  SKIP_UNDER_TSAN();
  // Not a fault plan: a watcher thread SIGKILLs rank 1's real process from
  // outside. The launcher detects the death (WIFSIGNALED with no kKilled
  // frame), aborts the world, and run() rethrows RankKilledError with the
  // external flag and the terminating signal.
  mp::World world(3);
  world.set_backend(mp::Backend::kSocket);
  mp::ReliableConfig rc;
  rc.enabled = true;
  world.set_reliable(rc);

  std::thread assassin([&world] {
    long pid = 0;
    while ((pid = world.process_id(1)) == 0) std::this_thread::yield();
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  });
  try {
    world.run([](mp::Context& ctx) {
      // Enough rounds that rank 1 cannot finish before the signal lands.
      for (int round = 0; round < 200000; ++round) {
        const int next = (ctx.rank() + 1) % ctx.size();
        const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(next, static_cast<std::uint64_t>(round), {static_cast<double>(round)});
        static_cast<void>(ctx.recv(prev, static_cast<std::uint64_t>(round)));
      }
    });
    FAIL() << "expected the external kill to abort the run";
  } catch (const mp::RankKilledError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_TRUE(e.external());
    EXPECT_EQ(e.killed_by_signal(), SIGKILL);
    EXPECT_NE(std::string(e.what()).find("killed by signal"), std::string::npos) << e.what();
  }
  assassin.join();
  EXPECT_TRUE(world.aborted());
}

TEST(SocketBackend, ResetForReplayRearmsAfterProcessDeath) {
  SKIP_UNDER_TSAN();
  // The kill latch survives reset_for_replay, so the respawned processes
  // replay straight past the planned kill — the engine-level rollback
  // protocol in miniature, at the transport layer.
  mp::World world(3);
  world.set_backend(mp::Backend::kSocket);
  mp::ReliableConfig rc;
  rc.enabled = true;
  world.set_reliable(rc);
  mp::FaultPlan plan;
  plan.enabled = true;
  plan.kill_rank = 2;
  plan.kill_at_op = 3;
  world.set_fault_plan(plan);
  const auto program = [](mp::Context& ctx) {
    for (int round = 0; round < 5; ++round) {
      const int next = (ctx.rank() + 1) % ctx.size();
      const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
      ctx.send(next, 100 + static_cast<std::uint64_t>(round), {static_cast<double>(round)});
      EXPECT_EQ(ctx.recv(prev, 100 + static_cast<std::uint64_t>(round))[0],
                static_cast<double>(round));
    }
    ctx.publish(500 + static_cast<std::uint64_t>(ctx.rank()),
                {static_cast<double>(ctx.rank())});
  };
  EXPECT_THROW(world.run(program), mp::RankKilledError);
  ASSERT_TRUE(world.aborted());
  world.reset_for_replay();
  world.run(program);  // fresh processes, latched kill: must complete
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(world.published(500 + static_cast<std::uint64_t>(r))[0], static_cast<double>(r));
  EXPECT_EQ(world.recovery_stats().kills, 1u);
}

}  // namespace
}  // namespace treesvd
