// One-sided Jacobi SVD: correctness across orderings and matrix families.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {
namespace {

struct Family {
  const char* name;
  Matrix (*make)(Rng&);
};

Matrix make_square(Rng& rng) { return random_gaussian(32, 32, rng); }
Matrix make_tall(Rng& rng) { return random_gaussian(80, 24, rng); }
Matrix make_graded(Rng& rng) {
  return with_spectrum(40, 16, geometric_spectrum(16, 1e6), rng);
}
Matrix make_lowrank(Rng& rng) { return rank_deficient(30, 16, 5, rng); }
Matrix make_repeated(Rng& rng) {
  std::vector<double> s = {3, 3, 3, 2, 2, 1, 1, 1};
  return with_spectrum(20, 8, s, rng);
}

const Family kFamilies[] = {
    {"square", make_square}, {"tall", make_tall},         {"graded", make_graded},
    {"lowrank", make_lowrank}, {"repeated", make_repeated},
};

using Param = std::tuple<std::string, int>;  // ordering name, family id

class SvdAcrossOrderings : public ::testing::TestWithParam<Param> {};

TEST_P(SvdAcrossOrderings, FactorisationIsAccurate) {
  Rng rng(1234);
  const auto& fam = kFamilies[static_cast<std::size_t>(std::get<1>(GetParam()))];
  const Matrix a = fam.make(rng);
  const auto ord = make_ordering(std::get<0>(GetParam()));
  const SvdResult r = one_sided_jacobi(a, *ord);
  ASSERT_TRUE(r.converged) << "did not converge in max_sweeps";
  const double scale = std::max(a.frobenius_norm(), 1.0);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / scale, 1e-12);
  EXPECT_LT(orthonormality_defect(r.v), 1e-12);
  // Sorted singular values.
  for (std::size_t k = 1; k < r.sigma.size(); ++k)
    EXPECT_GE(r.sigma[k - 1], r.sigma[k] - 1e-12 * scale);
  // Against the independent oracle.
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k)
    EXPECT_NEAR(r.sigma[k], sv[k], 1e-7 * scale) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsTimesFamilies, SvdAcrossOrderings,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "llb-fat-tree",
                                         "new-ring", "modified-ring", "hybrid-g4"),
                       ::testing::Values(0, 1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + std::string("_") +
                         kFamilies[static_cast<std::size_t>(std::get<1>(param_info.param))].name;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Svd, PaddingHandlesUnsupportedWidths) {
  // n = 6 with the fat-tree ordering pads to 8 internally.
  Rng rng(7);
  const Matrix a = random_gaussian(12, 6, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.sigma.size(), 6u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(Svd, OddColumnCountsWork) {
  Rng rng(8);
  const Matrix a = random_gaussian(15, 7, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(Svd, RankDetection) {
  Rng rng(9);
  const Matrix a = rank_deficient(24, 12, 4, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  EXPECT_EQ(r.rank(1e-9), 4u);
  // Zero singular values sorted to the tail; their U columns are zero.
  for (std::size_t j = 4; j < 12; ++j) {
    for (std::size_t i = 0; i < r.u.rows(); ++i) EXPECT_EQ(r.u(i, j), 0.0);
  }
}

TEST(Svd, HilbertIllConditioned) {
  const Matrix h = hilbert(10);
  const SvdResult r = one_sided_jacobi(h, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(h, r.u, r.sigma, r.v) / h.frobenius_norm(), 1e-12);
  EXPECT_GT(r.sigma[0] / r.sigma[8], 1e9);  // severely ill-conditioned
}

TEST(Svd, SortModeNoneStillConverges) {
  Rng rng(10);
  const Matrix a = random_gaussian(20, 12, rng);
  JacobiOptions opt;
  opt.sort = SortMode::kNone;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
  // Without sorting sigma need not be ordered, but the multiset must match.
  auto sorted = r.sigma;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(sorted[k], sv[k], 1e-8);
}

TEST(Svd, OffDiagonalDecreasesMonotonicallyNearConvergence) {
  Rng rng(11);
  const Matrix a = random_gaussian(40, 24, rng);
  JacobiOptions opt;
  opt.track_off = true;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.off_history.size(), 3u);
  // The tail of the history must decrease (quadratic convergence region).
  for (std::size_t k = r.off_history.size() - 1; k >= r.off_history.size() - 2; --k)
    EXPECT_LE(r.off_history[k], r.off_history[k - 1] + 1e-16);
}

TEST(Svd, QuadraticConvergenceTail) {
  // Once off is small, one sweep should square it (up to a modest factor).
  Rng rng(12);
  const Matrix a = random_gaussian(48, 32, rng);
  JacobiOptions opt;
  opt.track_off = true;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  bool quadratic_step_seen = false;
  for (std::size_t k = 1; k < r.off_history.size(); ++k) {
    const double prev = r.off_history[k - 1];
    const double cur = r.off_history[k];
    if (prev < 1e-2 && prev > 1e-14 && cur < 10 * prev * prev) quadratic_step_seen = true;
  }
  EXPECT_TRUE(quadratic_step_seen);
}

TEST(Svd, CyclicBaselineMatchesOrderingDriven) {
  Rng rng(13);
  const Matrix a = random_gaussian(24, 16, rng);
  const SvdResult rc = cyclic_jacobi(a);
  const SvdResult ro = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(rc.converged);
  for (std::size_t k = 0; k < rc.sigma.size(); ++k)
    EXPECT_NEAR(rc.sigma[k], ro.sigma[k], 1e-10);
}

TEST(Svd, ThreadedMatchesSerialBitwise) {
  // Rotations within a step touch disjoint columns, so the execution order
  // cannot change the result: the threaded driver must agree bit for bit.
  Rng rng(14);
  const Matrix a = random_gaussian(40, 32, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult serial = one_sided_jacobi(a, *ord);
  const SvdResult threaded = one_sided_jacobi_threaded(a, *ord, {}, 4);
  ASSERT_EQ(serial.sigma.size(), threaded.sigma.size());
  for (std::size_t k = 0; k < serial.sigma.size(); ++k)
    EXPECT_EQ(serial.sigma[k], threaded.sigma[k]);
  EXPECT_EQ(serial.sweeps, threaded.sweeps);
  EXPECT_EQ(serial.u, threaded.u);
  EXPECT_EQ(serial.v, threaded.v);
}

TEST(Svd, NoVComputationWhenDisabled) {
  Rng rng(15);
  const Matrix a = random_gaussian(16, 8, rng);
  JacobiOptions opt;
  opt.compute_v = false;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  EXPECT_TRUE(r.v.empty());
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-8);
}

TEST(Svd, WideMatrixRejected) {
  Rng rng(16);
  const Matrix a = random_gaussian(4, 8, rng);
  EXPECT_THROW(one_sided_jacobi(a, *make_ordering("round-robin")), std::invalid_argument);
  EXPECT_THROW(cyclic_jacobi(a), std::invalid_argument);
}

TEST(Svd, ThresholdAffectsRotationCount) {
  Rng rng(17);
  const Matrix a = random_gaussian(20, 12, rng);
  JacobiOptions loose;
  loose.tol = 1e-4;
  JacobiOptions tight;
  tight.tol = 1e-14;
  const SvdResult rl = one_sided_jacobi(a, *make_ordering("round-robin"), loose);
  const SvdResult rt = one_sided_jacobi(a, *make_ordering("round-robin"), tight);
  EXPECT_LT(rl.rotations, rt.rotations);
}

TEST(Svd, IdentityMatrixConvergesImmediately) {
  const Matrix i = Matrix::identity(8);
  const SvdResult r = one_sided_jacobi(i, *make_ordering("fat-tree"));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 1);  // first sweep finds nothing to do
  for (double s : r.sigma) EXPECT_NEAR(s, 1.0, 1e-14);
}

TEST(Svd, MaxSweepsCapRespected) {
  Rng rng(18);
  const Matrix a = random_gaussian(30, 20, rng);
  JacobiOptions opt;
  opt.max_sweeps = 2;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sweeps, 2);
}

}  // namespace
}  // namespace treesvd
