// Distributed machine: physical column ownership, message-based movement,
// and bitwise agreement with the shared-memory engine.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "sim/distributed.hpp"
#include "sim/machine.hpp"

namespace treesvd {
namespace {

using Param = std::tuple<std::string, int>;

class DistributedAcrossOrderings : public ::testing::TestWithParam<Param> {};

TEST_P(DistributedAcrossOrderings, BitwiseMatchesSharedMemoryEngine) {
  const auto& [name, n] = GetParam();
  const auto ord = make_ordering(name);
  if (!ord->supports(n)) GTEST_SKIP();
  Rng rng(99);
  const Matrix a = random_gaussian(static_cast<std::size_t>(2 * n), static_cast<std::size_t>(n),
                                   rng);
  const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
  const DistributedResult d = distributed_jacobi(a, *ord, topo);
  const SvdResult shared = one_sided_jacobi(a, *ord);

  ASSERT_TRUE(d.svd.converged);
  EXPECT_EQ(d.svd.sweeps, shared.sweeps);
  EXPECT_EQ(d.svd.rotations, shared.rotations);
  EXPECT_EQ(d.svd.swaps, shared.swaps);
  ASSERT_EQ(d.svd.sigma.size(), shared.sigma.size());
  for (std::size_t k = 0; k < shared.sigma.size(); ++k)
    EXPECT_EQ(d.svd.sigma[k], shared.sigma[k]) << "k=" << k;
  EXPECT_EQ(d.svd.u, shared.u);
  EXPECT_EQ(d.svd.v, shared.v);
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, DistributedAcrossOrderings,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "llb-fat-tree",
                                         "new-ring", "modified-ring", "hybrid-g4"),
                       ::testing::Values(16, 32)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name =
          std::get<0>(param_info.param) + "_n" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Distributed, FactorisationAccurate) {
  Rng rng(100);
  const Matrix a = with_spectrum(64, 32, geometric_spectrum(32, 1e4), rng);
  const FatTreeTopology topo(16, CapacityProfile::kPerfect);
  const DistributedResult d = distributed_jacobi(a, *make_ordering("fat-tree"), topo);
  ASSERT_TRUE(d.svd.converged);
  EXPECT_LT(reconstruction_error(a, d.svd.u, d.svd.sigma, d.svd.v) / a.frobenius_norm(), 1e-12);
  EXPECT_LT(orthonormality_defect(d.svd.v), 1e-12);
}

TEST(Distributed, CostMatchesTheAbstractModel) {
  // The distributed execution must incur exactly the communication the
  // abstract model predicts for the same number of sweeps.
  Rng rng(101);
  const int n = 16;
  const Matrix a = random_gaussian(32, static_cast<std::size_t>(n), rng);
  const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
  const auto ord = make_ordering("hybrid-g4");
  const DistributedResult d = distributed_jacobi(a, *ord, topo);
  const ModeledRun m = model_run(*ord, topo, n, CostParams{}, d.svd.sweeps);
  EXPECT_DOUBLE_EQ(d.cost.comm_words, m.per_sweep_total.comm_words);
  EXPECT_EQ(d.cost.messages, m.per_sweep_total.messages);
  EXPECT_DOUBLE_EQ(d.cost.comm_time, m.per_sweep_total.comm_time);
  EXPECT_DOUBLE_EQ(d.cost.max_contention, m.per_sweep_total.max_contention);
}

TEST(Distributed, RejectsUnsupportedConfigurations) {
  Rng rng(102);
  const Matrix a = random_gaussian(12, 6, rng);
  const FatTreeTopology topo3(2, CapacityProfile::kPerfect);
  // fat-tree needs a power of two and the machine does not pad
  EXPECT_THROW(distributed_jacobi(a, *make_ordering("fat-tree"), topo3),
               std::invalid_argument);
  // topology size mismatch
  const Matrix b = random_gaussian(16, 8, rng);
  const FatTreeTopology topo2(2, CapacityProfile::kPerfect);
  EXPECT_THROW(distributed_jacobi(b, *make_ordering("fat-tree"), topo2),
               std::invalid_argument);
}

TEST(Distributed, DeliveredTrafficIsCounted) {
  Rng rng(103);
  const int n = 16;
  const Matrix a = random_gaussian(20, static_cast<std::size_t>(n), rng);
  const FatTreeTopology topo(n / 2, CapacityProfile::kConstant);
  CostParams p;
  p.words_per_column = 20.0;
  const DistributedResult d =
      distributed_jacobi(a, *make_ordering("round-robin"), topo, JacobiOptions{}, p);
  EXPECT_GT(d.delivered_messages, 0u);
  EXPECT_DOUBLE_EQ(d.delivered_words, static_cast<double>(d.delivered_messages) * 20.0);
  EXPECT_EQ(d.delivered_messages, d.cost.messages);
}

TEST(Distributed, RankDeficientInput) {
  Rng rng(104);
  const Matrix a = rank_deficient(32, 16, 5, rng);
  const FatTreeTopology topo(8, CapacityProfile::kPerfect);
  const DistributedResult d = distributed_jacobi(a, *make_ordering("new-ring"), topo);
  ASSERT_TRUE(d.svd.converged);
  EXPECT_EQ(d.svd.rank(1e-9), 5u);
}

}  // namespace
}  // namespace treesvd
