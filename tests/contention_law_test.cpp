// Quantitative law behind Section 5's block-size rule, pinned as a test.
//
// On the CM-5-like profile (capacity 2^floor(l/2) relative to a leaf link), a
// hybrid block shift moves bs = n/(2*groups) parallel streams across a
// channel at level log2(bs)+1 (the lowest level an adjacent-group transfer
// must cross when groups are power-of-two aligned). The worst contention of
// a sweep is therefore a function of the block size alone:
//
//     contention(bs = 2^k) = 2^k / 2^floor((k+1)/2) = 2^ceil((k-1)/2)
//
// so blocks of 2 are contention-free (factor 1), and every doubling of the
// block size costs a factor sqrt(2)-ish — exactly the "properly choose the
// block size" dial. The test checks the closed form against the measured
// model across sizes and group counts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hybrid.hpp"
#include "sim/machine.hpp"

namespace treesvd {
namespace {

double predicted_cm5_contention(int bs) {
  const int k = static_cast<int>(std::lround(std::log2(bs)));
  return std::pow(2.0, (k - 1 + 1) / 2);  // 2^ceil((k-1)/2) via int division
}

TEST(ContentionLaw, HybridOnCm5DependsOnlyOnBlockSize) {
  for (int n : {64, 128, 256}) {
    const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
    for (int groups = 2; groups * 4 <= n; groups *= 2) {
      const HybridOrdering h(groups);
      if (!h.supports(n)) continue;
      const int bs = n / (2 * groups);
      const auto run = model_run(h, topo, n, CostParams{}, 1);
      EXPECT_DOUBLE_EQ(run.per_sweep_total.max_contention, predicted_cm5_contention(bs))
          << "n=" << n << " groups=" << groups << " bs=" << bs;
    }
  }
}

TEST(ContentionLaw, SmallestBlocksAreContentionFree) {
  for (int n : {32, 64, 128, 256}) {
    const int groups = n / 4;  // bs = 2
    const HybridOrdering h(groups);
    ASSERT_TRUE(h.supports(n));
    const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
    const auto run = model_run(h, topo, n, CostParams{}, 1);
    EXPECT_DOUBLE_EQ(run.per_sweep_total.max_contention, 1.0) << "n=" << n;
  }
}

TEST(ContentionLaw, PerfectFatTreeNeverExceedsTwo) {
  // On the perfect profile the relative capacity always matches the stream
  // count of aligned block shifts; the residual factor 2 comes from fused
  // transitions where a leaf emits both of its columns.
  for (int n : {64, 256}) {
    const FatTreeTopology topo(n / 2, CapacityProfile::kPerfect);
    for (int groups = 2; groups * 4 <= n; groups *= 2) {
      const HybridOrdering h(groups);
      if (!h.supports(n)) continue;
      const auto run = model_run(h, topo, n, CostParams{}, 1);
      EXPECT_LE(run.per_sweep_total.max_contention, 2.0) << "n=" << n << " g=" << groups;
    }
  }
}

TEST(ContentionLaw, BinaryTreeContentionEqualsBlockSize) {
  // Constant capacity: bs streams through any shared channel contend by bs.
  for (int n : {64, 256}) {
    const FatTreeTopology topo(n / 2, CapacityProfile::kConstant);
    for (int groups = 2; groups * 4 <= n; groups *= 2) {
      const HybridOrdering h(groups);
      if (!h.supports(n)) continue;
      const int bs = n / (2 * groups);
      const auto run = model_run(h, topo, n, CostParams{}, 1);
      EXPECT_DOUBLE_EQ(run.per_sweep_total.max_contention, static_cast<double>(bs))
          << "n=" << n << " g=" << groups;
    }
  }
}

}  // namespace
}  // namespace treesvd
