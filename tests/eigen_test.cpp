// Two-sided Jacobi eigensolver tests: the orderings applied to the symmetric
// eigenproblem (the companion problem of reference [2]).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/registry.hpp"
#include "eigen/jacobi_eigen.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace treesvd {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  const Matrix g = random_gaussian(n, n, rng);
  Matrix s = g + g.transposed();
  for (auto& v : s.data()) v *= 0.5;
  return s;
}

double eigen_residual(const Matrix& a, const EigenResult& r) {
  // ||A V - V diag(lambda)||_F / ||A||_F
  const Matrix av = a * r.eigenvectors;
  Matrix vl = r.eigenvectors;
  for (std::size_t j = 0; j < vl.cols(); ++j)
    for (std::size_t i = 0; i < vl.rows(); ++i) vl(i, j) *= r.eigenvalues[j];
  return (av - vl).frobenius_norm() / std::max(a.frobenius_norm(), 1e-300);
}

using Param = std::tuple<std::string, int>;

class EigenAcrossOrderings : public ::testing::TestWithParam<Param> {};

TEST_P(EigenAcrossOrderings, DecomposesRandomSymmetric) {
  const auto& [name, n] = GetParam();
  const auto ord = make_ordering(name);
  Rng rng(555);
  const Matrix a = random_symmetric(static_cast<std::size_t>(n), rng);
  const EigenResult r = jacobi_symmetric_eigen(a, *ord);
  ASSERT_TRUE(r.converged) << name;
  EXPECT_LT(eigen_residual(a, r), 2e-13 * n);
  EXPECT_LT(orthonormality_defect(r.eigenvectors), 2e-13 * n);
  // Nonincreasing eigenvalues.
  for (std::size_t k = 1; k < r.eigenvalues.size(); ++k)
    EXPECT_GE(r.eigenvalues[k - 1], r.eigenvalues[k] - 1e-10);
  // Against the tridiagonal-QL oracle.
  auto oracle = symmetric_eigenvalues(a);  // ascending
  std::reverse(oracle.begin(), oracle.end());
  for (std::size_t k = 0; k < oracle.size(); ++k)
    EXPECT_NEAR(r.eigenvalues[k], oracle[k], 1e-9 * std::max(1.0, std::fabs(oracle[0])));
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, EigenAcrossOrderings,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "new-ring",
                                         "hybrid-g4"),
                       ::testing::Values(16, 31, 32)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_n" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Eigen, IndefiniteWithZeroDiagonal) {
  // [[0,1],[1,0]] has eigenvalues +1, -1; the naive Gram-based rotation
  // breaks here, the symmetric rotation must not.
  const Matrix a = Matrix::from_rows({{0, 1}, {1, 0}});
  const EigenResult r = jacobi_symmetric_eigen(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(r.eigenvalues[1], -1.0, 1e-14);
}

TEST(Eigen, DiagonalMatrixConvergesInOneSweep) {
  Matrix d(8, 8);
  for (int i = 0; i < 8; ++i)
    d(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 8.0 - i;
  const EigenResult r = jacobi_symmetric_eigen(d, *make_ordering("fat-tree"));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(r.eigenvalues[static_cast<std::size_t>(i)], 8.0 - i);
}

TEST(Eigen, NegativeSpectrum) {
  Rng rng(556);
  Matrix g = random_gaussian(10, 10, rng);
  Matrix spd = g.transposed() * g;
  Matrix negdef = spd;
  for (auto& v : negdef.data()) v = -v;
  for (int i = 0; i < 10; ++i)
    negdef(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) -= 0.5;
  const EigenResult r = jacobi_symmetric_eigen(negdef, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  for (double l : r.eigenvalues) EXPECT_LT(l, 0.0);
  EXPECT_LT(eigen_residual(negdef, r), 1e-12);
}

TEST(Eigen, PaddingKeepsRealSpectrumClean) {
  // n = 31 with fat-tree pads to 32; the pad eigenpair must not leak.
  Rng rng(557);
  const Matrix a = random_symmetric(31, rng);
  const EigenResult r = jacobi_symmetric_eigen(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.eigenvalues.size(), 31u);
  auto oracle = symmetric_eigenvalues(a);
  std::reverse(oracle.begin(), oracle.end());
  for (std::size_t k = 0; k < 31; ++k) EXPECT_NEAR(r.eigenvalues[k], oracle[k], 1e-9);
}

TEST(Eigen, NoSortKeepsConvergence) {
  Rng rng(558);
  const Matrix a = random_symmetric(12, rng);
  EigenOptions opt;
  opt.sort_descending = false;
  const EigenResult r = jacobi_symmetric_eigen(a, *make_ordering("round-robin"), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.swaps, 0u);
  auto sorted = r.eigenvalues;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  auto oracle = symmetric_eigenvalues(a);
  std::reverse(oracle.begin(), oracle.end());
  for (std::size_t k = 0; k < sorted.size(); ++k) EXPECT_NEAR(sorted[k], oracle[k], 1e-9);
}

TEST(Eigen, OffNormTracksAndDecays) {
  Rng rng(559);
  const Matrix a = random_symmetric(24, rng);
  EigenOptions opt;
  opt.track_off = true;
  const EigenResult r = jacobi_symmetric_eigen(a, *make_ordering("fat-tree"), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.off_history.size(), 2u);
  EXPECT_LT(r.off_history.back(), 1e-10);
}

TEST(Eigen, RejectsNonSymmetricAndNonSquare) {
  EXPECT_THROW(jacobi_symmetric_eigen(Matrix(3, 4), *make_ordering("round-robin")),
               std::invalid_argument);
  Matrix bad = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_THROW(jacobi_symmetric_eigen(bad, *make_ordering("round-robin")),
               std::invalid_argument);
}

TEST(Eigen, EigenvaluesMatchSvdForSpd) {
  Rng rng(560);
  Matrix g = random_gaussian(14, 14, rng);
  Matrix spd = g.transposed() * g;
  for (int i = 0; i < 14; ++i)
    spd(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 1.0;
  const EigenResult e = jacobi_symmetric_eigen(spd, *make_ordering("odd-even"));
  ASSERT_TRUE(e.converged);
  const auto sv = singular_values_oracle(spd);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(e.eigenvalues[k], sv[k], 1e-8);
}

}  // namespace
}  // namespace treesvd
