// Block ring ordering (Section 5's Schreiber-partitioning building block).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/block_ring.hpp"
#include "core/registry.hpp"
#include "core/validate.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {
namespace {

TEST(BlockRing, SupportsContract) {
  const BlockRingOrdering b4(4);
  EXPECT_TRUE(b4.supports(16));
  EXPECT_TRUE(b4.supports(24));  // group size 6: not a power of two — fine
  EXPECT_TRUE(b4.supports(40));
  EXPECT_FALSE(b4.supports(12));  // group size 3: odd
  EXPECT_FALSE(b4.supports(8));   // group size 2: too small
  EXPECT_THROW(BlockRingOrdering(3), std::invalid_argument);
}

TEST(BlockRing, ValidSweepsAcrossSizes) {
  for (int groups : {2, 4, 6}) {
    const BlockRingOrdering ord(groups);
    for (int n : {8, 12, 16, 24, 36, 48, 64}) {
      if (!ord.supports(n)) continue;
      const auto v = validate_sweep_sequence(ord, n, 3);
      EXPECT_TRUE(v.valid) << "g=" << groups << " n=" << n << ": " << v.error;
    }
  }
}

TEST(BlockRing, TakesNSteps) {
  EXPECT_EQ(BlockRingOrdering(2).sweep(16).steps(), 16);
  EXPECT_EQ(BlockRingOrdering(4).sweep(24).steps(), 24);
}

TEST(BlockRing, RestoresAfterTwoSweeps) {
  for (const auto& [groups, n] :
       std::vector<std::pair<int, int>>{{2, 8}, {2, 24}, {4, 16}, {4, 48}, {6, 36}}) {
    const BlockRingOrdering ord(groups);
    std::vector<int> layout(static_cast<std::size_t>(n));
    std::iota(layout.begin(), layout.end(), 0);
    for (int k = 0; k < 2; ++k) {
      const Sweep s = ord.sweep_from(layout, k);
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
    }
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(layout[static_cast<std::size_t>(i)], i) << "g=" << groups << " n=" << n;
  }
}

TEST(BlockRing, InterGroupMovesAreOneDirectionalBlockShifts) {
  const int groups = 4;
  const int n = 24;
  const int gsz = n / groups;
  const Sweep s = BlockRingOrdering(groups).sweep(n);
  for (int t = 0; t < s.steps(); ++t) {
    int left_per_group[4] = {0, 0, 0, 0};
    for (const ColumnMove& mv : s.moves(t)) {
      const int gf = mv.from_slot / gsz;
      const int gt = mv.to_slot / gsz;
      if (gf == gt) continue;
      EXPECT_EQ(gt, (gf + groups - 1) % groups) << "step " << t;
      ++left_per_group[gf];
    }
    for (int g = 0; g < groups; ++g)
      EXPECT_LE(left_per_group[g], gsz / 2) << "step " << t;
  }
}

TEST(BlockRing, IntraGroupPhaseCoversAllIntraGroupPairs) {
  const int groups = 2;
  const int n = 12;
  const int gsz = n / groups;
  const Sweep s = BlockRingOrdering(groups).sweep(n);
  std::set<std::pair<int, int>> got;
  for (int t = 0; t < gsz; ++t)
    for (const auto& p : s.pairs(t))
      got.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
  for (int g = 0; g < groups; ++g)
    for (int a = g * gsz; a < (g + 1) * gsz; ++a)
      for (int b = a + 1; b < (g + 1) * gsz; ++b)
        EXPECT_TRUE(got.count({a, b})) << a << "," << b;
}

TEST(BlockRing, SvdConvergesAtNonPowerOfTwoSizes) {
  Rng rng(616);
  const Matrix a = random_gaussian(48, 24, rng);  // 24 = 4 groups of 6
  const SvdResult r = one_sided_jacobi(a, BlockRingOrdering(4));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
}

TEST(BlockRing, RegistryRoundTrip) {
  const auto ord = make_ordering("block-ring-g6");
  EXPECT_EQ(ord->name(), "block-ring-g6");
  EXPECT_TRUE(ord->supports(36));
}

}  // namespace
}  // namespace treesvd
