// Tests for the concurrency analysis layer: the vector-clock happens-before
// tracker, the seeded schedule fuzzer, and the determinism digests. The
// tracker/fuzzer/digest APIs exist in every build (the library is always
// compiled); only the end-to-end sections that rely on the instrumentation
// hooks inside ThreadPool / mp::World are gated on TREESVD_ANALYSIS.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "analysis/digest.hpp"
#include "analysis/fuzz.hpp"
#include "analysis/hb.hpp"
#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "util/rng.hpp"

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS
#include "util/thread_pool.hpp"
#endif

namespace treesvd {
namespace {

using analysis::AccessKind;
using analysis::Tracker;

// Two OS threads with no structural edge between them: each becomes its own
// thread-root logical task, so the tracker must treat them as concurrent.
void run_two_threads(Tracker& t, const void* obj, AccessKind first, AccessKind second) {
  std::thread a([&] { t.access(first, obj, 0, "obj", "test:a"); });
  a.join();
  std::thread b([&] { t.access(second, obj, 0, "obj", "test:b"); });
  b.join();
}

TEST(HbTracker, UnorderedPlainWritesRace) {
  Tracker t;
  int obj = 0;
  run_two_threads(t, &obj, AccessKind::kWrite, AccessKind::kWrite);
  EXPECT_EQ(t.race_count(), 1u);
  ASSERT_EQ(t.reports().size(), 1u);
  const analysis::RaceReport r = t.reports()[0];
  EXPECT_EQ(r.object, "obj");
  EXPECT_EQ(r.first.site, "test:a");
  EXPECT_EQ(r.second.site, "test:b");
  EXPECT_NE(r.first.task, r.second.task);
}

TEST(HbTracker, WriteVsReadAndWriteVsAtomicRace) {
  {
    Tracker t;
    int obj = 0;
    run_two_threads(t, &obj, AccessKind::kWrite, AccessKind::kRead);
    EXPECT_EQ(t.race_count(), 1u);
  }
  {
    Tracker t;
    int obj = 0;
    run_two_threads(t, &obj, AccessKind::kAtomic, AccessKind::kWrite);
    EXPECT_EQ(t.race_count(), 1u);
  }
}

TEST(HbTracker, BenignKindsNeverRace) {
  {
    Tracker t;
    int obj = 0;
    run_two_threads(t, &obj, AccessKind::kRead, AccessKind::kRead);
    EXPECT_EQ(t.race_count(), 0u);
  }
  {
    Tracker t;
    int obj = 0;
    run_two_threads(t, &obj, AccessKind::kAtomic, AccessKind::kAtomic);
    EXPECT_EQ(t.race_count(), 0u);
  }
}

TEST(HbTracker, DistinctIndicesAreDistinctLocations) {
  Tracker t;
  int obj = 0;
  std::thread a([&] { t.access(AccessKind::kWrite, &obj, 0, "obj", "test:a"); });
  a.join();
  std::thread b([&] { t.access(AccessKind::kWrite, &obj, 1, "obj", "test:b"); });
  b.join();
  EXPECT_EQ(t.race_count(), 0u);
}

TEST(HbTracker, ForkTaskJoinOrdersAccesses) {
  // parent write -> fork -> child write -> join -> parent write: every pair
  // is HB-ordered, so no race despite three plain writes to one location.
  Tracker t;
  int obj = 0;
  int region = 0;
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:parent-before");
  t.fork(&region, 1);
  std::thread child([&] {
    t.task_begin(&region, 1, "child");
    t.access(AccessKind::kWrite, &obj, 0, "obj", "test:child");
    t.task_end(&region, 1);
  });
  child.join();
  t.join(&region, 1);
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:parent-after");
  EXPECT_EQ(t.race_count(), 0u);
}

TEST(HbTracker, SiblingTasksAreConcurrentEvenOnOneThread) {
  // Two chunks of the same fork epoch executed back-to-back on one OS thread
  // (the single-core CI case): still logically concurrent, so conflicting
  // plain writes must race.
  Tracker t;
  int obj = 0;
  int region = 0;
  t.fork(&region, 1);
  t.task_begin(&region, 1, "chunk 0");
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:chunk0");
  t.task_end(&region, 1);
  t.task_begin(&region, 1, "chunk 1");
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:chunk1");
  t.task_end(&region, 1);
  t.join(&region, 1);
  EXPECT_EQ(t.race_count(), 1u);
  ASSERT_EQ(t.reports().size(), 1u);
  EXPECT_EQ(t.reports()[0].first.stack.back(), "chunk 0");
  EXPECT_EQ(t.reports()[0].second.stack.back(), "chunk 1");
}

TEST(HbTracker, ChannelEdgeOrdersSenderBeforeReceiver) {
  Tracker t;
  int obj = 0;
  int chan = 0;
  std::thread a([&] {
    t.access(AccessKind::kWrite, &obj, 0, "obj", "test:sender");
    t.channel_send(&chan, 0, 1, 7);
  });
  a.join();
  std::thread b([&] {
    t.channel_recv(&chan, 0, 1, 7);
    t.access(AccessKind::kWrite, &obj, 0, "obj", "test:receiver");
  });
  b.join();
  EXPECT_EQ(t.race_count(), 0u);
}

TEST(HbTracker, BarrierOrdersArrivalsBeforeDepartures) {
  Tracker t;
  int obj = 0;
  int bar = 0;
  std::thread a([&] {
    t.access(AccessKind::kWrite, &obj, 0, "obj", "test:before-barrier");
    t.barrier_arrive(&bar, 1);
  });
  a.join();
  std::thread b([&] {
    t.barrier_depart(&bar, 1);
    t.access(AccessKind::kWrite, &obj, 0, "obj", "test:after-barrier");
  });
  b.join();
  EXPECT_EQ(t.race_count(), 0u);
}

TEST(HbTracker, FramesInheritedAcrossForkAppearInReports) {
  Tracker t;
  int obj = 0;
  int region = 0;
  t.push_frame("sweep 3");
  t.fork(&region, 1);
  t.task_begin(&region, 1, "chunk A");
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:a");
  t.task_end(&region, 1);
  t.task_begin(&region, 1, "chunk B");
  t.access(AccessKind::kWrite, &obj, 0, "obj", "test:b");
  t.task_end(&region, 1);
  t.join(&region, 1);
  t.pop_frame();
  ASSERT_EQ(t.reports().size(), 1u);
  const analysis::RaceReport r = t.reports()[0];
  // The chunk's frame chain ends "... / sweep 3 / chunk X": the parent's
  // pushed frame is inherited across the fork, the chunk label is appended.
  ASSERT_GE(r.first.stack.size(), 2u);
  EXPECT_EQ(r.first.stack[r.first.stack.size() - 2], "sweep 3");
  EXPECT_EQ(r.first.stack.back(), "chunk A");
  ASSERT_GE(r.second.stack.size(), 2u);
  EXPECT_EQ(r.second.stack[r.second.stack.size() - 2], "sweep 3");
  EXPECT_EQ(r.second.stack.back(), "chunk B");
  EXPECT_FALSE(r.to_string().empty());
}

TEST(HbTracker, ReportStorageCapsButCountDoesNot) {
  Tracker t;
  std::vector<int> objs(Tracker::kMaxReports + 8);
  for (std::size_t i = 0; i < objs.size(); ++i) {
    std::thread a([&, i] { t.access(AccessKind::kWrite, &objs[i], 0, "obj", "test:a"); });
    a.join();
    std::thread b([&, i] { t.access(AccessKind::kWrite, &objs[i], 0, "obj", "test:b"); });
    b.join();
  }
  EXPECT_EQ(t.race_count(), objs.size());
  EXPECT_EQ(t.reports().size(), Tracker::kMaxReports);
}

TEST(ScheduleFuzzer, PermutationsAreSeededAndValid) {
  const auto draw = [](std::uint64_t seed, int calls) {
    analysis::FuzzPlan plan;
    plan.seed = seed;
    analysis::ScheduleFuzzer f(plan);
    std::vector<std::vector<std::uint32_t>> perms;
    for (int c = 0; c < calls; ++c) {
      std::vector<std::uint32_t> p;
      f.chunk_permutation(16, p);
      perms.push_back(p);
    }
    return perms;
  };
  const auto a = draw(42, 4);
  const auto b = draw(42, 4);
  EXPECT_EQ(a, b) << "same seed must replay the same permutation sequence";
  for (const auto& p : a) {
    std::vector<bool> seen(16, false);
    ASSERT_EQ(p.size(), 16u);
    for (const std::uint32_t v : p) {
      ASSERT_LT(v, 16u);
      ASSERT_FALSE(seen[v]) << "not a permutation";
      seen[v] = true;
    }
  }
  // Different seeds (or successive calls) must actually shuffle: at least one
  // of the drawn permutations differs from identity.
  const auto c = draw(43, 4);
  EXPECT_NE(a, c) << "different seeds produced identical permutation sequences";
}

TEST(ScheduleFuzzer, YieldProbabilityBoundsBehaviour) {
  {
    analysis::FuzzPlan plan;
    plan.seed = 7;
    plan.yield_prob = 0.0;
    analysis::ScheduleFuzzer f(plan);
    for (int i = 0; i < 200; ++i)
      f.perturb(analysis::kFuzzPoolChunk, 1, static_cast<std::uint64_t>(i), 0);
    EXPECT_EQ(f.decisions(), 200u);
    EXPECT_EQ(f.yields(), 0u);
  }
  {
    analysis::FuzzPlan plan;
    plan.seed = 7;
    plan.yield_prob = 1.0;
    analysis::ScheduleFuzzer f(plan);
    for (int i = 0; i < 50; ++i)
      f.perturb(analysis::kFuzzPoolChunk, 1, static_cast<std::uint64_t>(i), 0);
    EXPECT_EQ(f.decisions(), 50u);
    EXPECT_GE(f.yields(), 50u);
  }
}

TEST(ScheduleFuzzer, Mix64MatchesSplitmixAndSpreads) {
  // Deterministic, constexpr-evaluable, and not the identity.
  static_assert(analysis::mix64(0) == analysis::mix64(0));
  EXPECT_NE(analysis::mix64(1), 1u);
  EXPECT_NE(analysis::mix64(1), analysis::mix64(2));
}

TEST(DeterminismDigest, SameResultSameDigest) {
  Rng rng(5);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("round-robin");
  JacobiOptions opt;
  const SvdResult r1 = one_sided_jacobi(a, *ord, opt);
  const SvdResult r2 = one_sided_jacobi(a, *ord, opt);
  EXPECT_EQ(result_core_digest(r1), result_core_digest(r2));
  EXPECT_EQ(result_digest(r1), result_digest(r2));
}

TEST(DeterminismDigest, SensitiveToValuesAndKernelStats) {
  Rng rng(5);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("round-robin");
  SvdResult r = one_sided_jacobi(a, *ord, {});
  const std::uint64_t core = result_core_digest(r);
  const std::uint64_t full = result_digest(r);
  // A one-ulp sigma perturbation must flip the core digest.
  SvdResult bumped = r;
  bumped.sigma[0] = std::nextafter(bumped.sigma[0], 2.0 * bumped.sigma[0] + 1.0);
  EXPECT_NE(result_core_digest(bumped), core);
  // Kernel-stat drift flips the full digest but not the core digest.
  SvdResult counted = r;
  counted.kernel_stats.pairs += 1;
  EXPECT_EQ(result_core_digest(counted), core);
  EXPECT_NE(result_digest(counted), full);
}

TEST(DeterminismDigest, Fnv1aIsOrderSensitive) {
  analysis::Fnv1a h1;
  h1.add_u64(1);
  h1.add_u64(2);
  analysis::Fnv1a h2;
  h2.add_u64(2);
  h2.add_u64(1);
  EXPECT_NE(h1.value(), h2.value());
}

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS

// --- End-to-end sections: these rely on the hooks compiled into ThreadPool,
// --- mp::World and the SVD drivers (TREESVD_ANALYSIS builds only).

TEST(HbEndToEnd, InstrumentedPoolRunIsObservedAndRaceFree) {
  analysis::ScopedTracker t;
  ThreadPool pool(4);
  std::vector<double> out(64, 0.0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<double>(i); }, 1);
  EXPECT_EQ(t->race_count(), 0u);
  EXPECT_GT(t->event_count(), 0u) << "hooks did not fire — instrumentation dead";
  EXPECT_GE(t->task_count(), 2u);
}

TEST(HbEndToEnd, PlantedPoolRaceIsDetectedWithBothStacks) {
  analysis::ScopedTracker t;
  ThreadPool pool(4);
  double shared = 0.0;
  pool.parallel_for(8,
                    [&](std::size_t i) {
                      TREESVD_HB_WRITE(&shared, 0, "planted shared scalar");
                      shared += static_cast<double>(i);
                    },
                    1);
  EXPECT_GE(t->race_count(), 1u);
  ASSERT_FALSE(t->reports().empty());
  const analysis::RaceReport r = t->reports()[0];
  EXPECT_EQ(r.object, "planted shared scalar");
  EXPECT_FALSE(r.first.site.empty());
  EXPECT_FALSE(r.second.site.empty());
  EXPECT_FALSE(r.first.stack.empty());
  EXPECT_FALSE(r.second.stack.empty());
}

TEST(HbEndToEnd, ThreadedEngineMatchesSerialUnderFuzzedSchedules) {
  Rng rng(17);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("fat-tree");
  JacobiOptions opt;
  opt.grain = 1;  // force the chunked pool path even at this tiny n
  const std::uint64_t serial = result_digest(one_sided_jacobi(a, *ord, opt));
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{99}}) {
    analysis::FuzzPlan plan;
    plan.seed = seed;
    analysis::ScopedFuzzer fuzz(plan);
    analysis::ScopedTracker t;
    const SvdResult r = one_sided_jacobi_threaded(a, *ord, opt, 4);
    EXPECT_EQ(result_digest(r), serial) << "seed=" << seed;
    EXPECT_EQ(t->race_count(), 0u) << "seed=" << seed;
    EXPECT_GT(t->event_count(), 0u);
  }
}

#endif  // TREESVD_ANALYSIS

}  // namespace
}  // namespace treesvd
