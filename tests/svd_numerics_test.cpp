// Numerical-robustness layer (DESIGN.md §11): exact power-of-two
// equilibration and its bitwise-transparency contract, the scaled BLAS-1
// fallbacks, the hardened rotation kernel, the relative drift guard, and the
// graceful-degradation status classification.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/rotation.hpp"
#include "svd/equilibrate.hpp"
#include "svd/jacobi.hpp"
#include "svd/pair_kernel.hpp"
#include "svd/recovery.hpp"
#include "svd/spmd.hpp"

namespace treesvd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Equilibration primitive

TEST(Equilibrate, ScanScaleReportsExponentSpanAndZeros) {
  Matrix a(2, 2);
  a(0, 0) = 1e150;
  a(1, 0) = -1e-150;
  a(0, 1) = 0.0;
  a(1, 1) = 2.0;
  const ScaleStats s = scan_scale(a);
  EXPECT_EQ(s.max_abs, 1e150);
  EXPECT_EQ(s.min_abs_nonzero, 1e-150);
  EXPECT_EQ(s.zero_entries, 1u);
  EXPECT_EQ(s.max_exponent, std::ilogb(1e150));
  EXPECT_EQ(s.min_exponent, std::ilogb(1e-150));
  EXPECT_GT(s.exponent_span(), 990);
}

TEST(Equilibrate, AlwaysModeRescalesToUnitBinade) {
  Rng rng(11);
  Matrix a = random_gaussian(6, 4, rng);
  for (double& v : a.data()) v = std::ldexp(v, 60);
  const Matrix orig = a;
  const Equilibration eq = equilibrate(a, EquilibrateMode::kAlways);
  ASSERT_TRUE(eq.applied);
  const ScaleStats after = scan_scale(a);
  EXPECT_EQ(after.max_exponent, 0);  // max entry now in [1, 2)
  // The scaling is an exact power of two: undoing it restores every entry
  // bitwise.
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      EXPECT_EQ(std::ldexp(a(i, j), -eq.exponent), orig(i, j));
}

TEST(Equilibrate, AutoModeActsOnlyBeyondTheExponentGuard) {
  Rng rng(12);
  Matrix well = random_gaussian(4, 4, rng);
  EXPECT_FALSE(equilibrate(well, EquilibrateMode::kAuto).applied);

  Matrix big = random_gaussian(4, 4, rng);
  for (double& v : big.data()) v *= 1e150;  // ilogb ~ 498 > 320
  EXPECT_TRUE(equilibrate(big, EquilibrateMode::kAuto).applied);

  Matrix tiny = random_gaussian(4, 4, rng);
  for (double& v : tiny.data()) v *= 1e-150;
  EXPECT_TRUE(equilibrate(tiny, EquilibrateMode::kAuto).applied);

  Matrix off = random_gaussian(4, 4, rng);
  for (double& v : off.data()) v *= 1e60;  // ilogb ~ 199 <= 320: leave alone
  EXPECT_FALSE(equilibrate(off, EquilibrateMode::kAuto).applied);
}

TEST(Equilibrate, UnscaleSigmaIsExact) {
  Equilibration eq;
  eq.applied = true;
  eq.exponent = -75;
  std::vector<double> sigma = {3.0, 1.5, 0.0};
  unscale_sigma(sigma, eq);
  EXPECT_EQ(sigma[0], std::ldexp(3.0, 75));
  EXPECT_EQ(sigma[1], std::ldexp(1.5, 75));
  EXPECT_EQ(sigma[2], 0.0);
}

// The equilibration contract: on a well-scaled input, the forced-scaling run
// must reproduce the unscaled run bit-for-bit — same sigma bits, same U/V
// bits, and the same sweep count.
TEST(Equilibrate, BitwiseTransparentOnWellScaledInput) {
  Rng rng(13);
  Matrix a = random_gaussian(12, 8, rng);
  for (double& v : a.data()) v = std::ldexp(v, 60);  // nonzero exponent, in range

  JacobiOptions off;
  off.equilibrate = EquilibrateMode::kOff;
  JacobiOptions always;
  always.equilibrate = EquilibrateMode::kAlways;

  const auto ord = make_ordering("fat-tree");
  const SvdResult r0 = one_sided_jacobi(a, *ord, off);
  const SvdResult r1 = one_sided_jacobi(a, *ord, always);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r1.diagnostics.equilibrated);
  EXPECT_EQ(r0.sweeps, r1.sweeps);
  EXPECT_EQ(r0.rotations, r1.rotations);
  for (std::size_t k = 0; k < r0.sigma.size(); ++k) EXPECT_EQ(r0.sigma[k], r1.sigma[k]);
  EXPECT_TRUE(r0.u == r1.u);
  EXPECT_TRUE(r0.v == r1.v);
}

// ---------------------------------------------------------------------------
// Scaled BLAS-1 fallbacks

TEST(ScaledSumsq, MatchesPlainSumsqInRange) {
  const std::vector<double> x = {3.0, -4.0, 12.0};
  const ScaledSumsq s = sumsq_scaled(x);
  EXPECT_DOUBLE_EQ(s.value(), sumsq(x));
  EXPECT_DOUBLE_EQ(s.norm(), 13.0);
}

TEST(ScaledSumsq, SurvivesOverflowScale) {
  const std::vector<double> x = {3e160, 4e160};
  EXPECT_TRUE(std::isinf(sumsq(x)));  // the fast path honestly overflows
  const ScaledSumsq s = sumsq_scaled(x);
  EXPECT_NEAR(s.norm(), 5e160, 5e160 * 1e-15);
  EXPECT_TRUE(std::isinf(s.value()));  // the true squared norm IS out of range
  // sumsq_robust falls back to the scaled form, so it reports the same
  // honest overflow instead of NaN garbage.
  EXPECT_EQ(sumsq_robust(x), s.value());
}

TEST(ScaledSumsq, SurvivesUnderflowScale) {
  const std::vector<double> x = {3e-170, -4e-170};
  EXPECT_EQ(sumsq(x), 0.0);  // squares vanish below the denormal range
  const ScaledSumsq s = sumsq_scaled(x);
  EXPECT_NEAR(s.norm(), 5e-170, 5e-170 * 1e-15);
  EXPECT_GT(s.norm(), 0.0);
  EXPECT_DOUBLE_EQ(s.norm(), nrm2(x));  // agrees with the dnrm2-style norm
}

TEST(ScaledDot, RecoversCancellationThatOverflowsTheFastPath) {
  const std::vector<double> x = {1e160, 1e160};
  const std::vector<double> y = {1e160, -1e160};
  EXPECT_TRUE(std::isnan(dot(x, y)));  // Inf + (-Inf)
  EXPECT_EQ(dot_scaled(x, y), 0.0);    // the true dot product is exactly 0
}

TEST(ScaledDot, MatchesPlainDotInRange) {
  const std::vector<double> x = {1.0, 2.0, -3.0};
  const std::vector<double> y = {0.5, -1.0, 4.0};
  EXPECT_DOUBLE_EQ(dot_scaled(x, y), dot(x, y));
}

// ---------------------------------------------------------------------------
// Hardened rotation kernel

TEST(RotationHardening, OverflowedZetaReturnsIdentityInsteadOfLivelock) {
  // apq tiny against the diagonal gap: zeta overflows to Inf, t rounds to
  // zero — the mathematically correct limit is "no rotation". The old code
  // emitted a counted no-op rotation here, which never converges.
  const GramPair g{1.0, 1e300, 1e-30};
  const JacobiRotation r = compute_rotation(g, 0.0);
  EXPECT_TRUE(r.identity);
}

TEST(RotationHardening, LargeFiniteZetaStillRotates) {
  const GramPair g{1.0, 1e20, 1.0};  // zeta = 5e19, above the 2^27 branch
  const JacobiRotation r = compute_rotation(g, 0.0);
  ASSERT_FALSE(r.identity);
  EXPECT_NEAR(r.c, 1.0, 1e-15);
  EXPECT_NEAR(r.s, 1e-20, 1e-35);
  EXPECT_NEAR(r.c * r.c + r.s * r.s, 1.0, 1e-15);
}

TEST(RotationHardening, BigZetaBranchIsBitwiseEquivalent) {
  // For |zeta| >= 2^27, sqrt(1 + zeta^2) rounds to |zeta| exactly, so
  // t = 1/(2 zeta) is the textbook small root bit-for-bit — the branch only
  // avoids the zeta^2 intermediate overflow.
  for (const double z : {134217728.0 /* 2^27 */, 1e9, 1e12, 1e15, 1e100}) {
    EXPECT_EQ(1.0 / (2.0 * z), 1.0 / (z + std::sqrt(1.0 + z * z))) << "zeta = " << z;
  }
}

TEST(RotationHardening, DuplicateColumnsRotateAtFortyFiveDegrees) {
  const GramPair g{2.0, 2.0, 2.0};  // x == y exactly
  const JacobiRotation r = compute_rotation(g, 1e-13);
  ASSERT_FALSE(r.identity);
  EXPECT_DOUBLE_EQ(r.c, 1.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(r.s, r.c);
}

TEST(RotationHardening, DegenerateAndPoisonedGramsReturnIdentity) {
  EXPECT_TRUE(compute_rotation({0.0, 5.0, 0.0}, 1e-13).identity);  // zero column
  EXPECT_TRUE(compute_rotation({5.0, 0.0, 0.0}, 1e-13).identity);
  EXPECT_TRUE(compute_rotation({kInf, 1.0, 0.5}, 1e-13).identity);
  EXPECT_TRUE(compute_rotation({1.0, 1.0, kNan}, 1e-13).identity);
}

// ---------------------------------------------------------------------------
// Drift guard at extreme scales (satellite of the kNormDriftGuard fix)

TEST(DriftGuard, UnderflowedThresholdForcesReReduction) {
  // Columns at 1e-160: the threshold tol*||x||*||y|| underflows to exactly
  // zero. The old absolute-window guard went silent here; the relative guard
  // must re-reduce and still perform the rotation.
  std::vector<double> x = {1e-160, 0.0};
  std::vector<double> y = {0.7e-160, 0.7e-160};
  const double app = sumsq_scaled(x).value();
  const double aqq = sumsq_scaled(y).value();
  JacobiOptions opt;
  KernelCounters counters;
  const std::span<double> none;
  const auto out =
      detail::process_pair_columns_cached(x, y, none, none, app, aqq, opt, counters);
  EXPECT_GT(counters.snapshot().norm_refreshes, 0u);
  EXPECT_TRUE(out.outcome.rotated || out.outcome.swapped);
  EXPECT_TRUE(std::isfinite(out.app));
  EXPECT_TRUE(std::isfinite(out.aqq));
}

TEST(DriftGuard, PoisonedCacheIsRepairedBeforeUse) {
  // An Inf cached norm (overflowed accumulation / corrupted payload) used to
  // poison the threshold forever — every later pair then skipped silently.
  Rng rng(21);
  Matrix a = random_gaussian(8, 2, rng);
  auto x = a.col(0);
  auto y = a.col(1);
  JacobiOptions opt;
  KernelCounters counters;
  const std::span<double> none;
  const auto out = detail::process_pair_columns_cached(x, y, none, none, kInf, sumsq(y), opt,
                                                       counters);
  EXPECT_GE(counters.snapshot().norm_refreshes, 2u);
  EXPECT_TRUE(std::isfinite(out.app));
  EXPECT_TRUE(std::isfinite(out.aqq));
}

TEST(DriftGuard, FarFromThresholdNeverFires) {
  // Strongly coupled well-scaled columns: mag/thresh is far above the
  // window, so the guard must not add refresh passes.
  std::vector<double> x = {1.0, 0.5};
  std::vector<double> y = {0.9, 0.6};
  JacobiOptions opt;
  KernelCounters counters;
  const std::span<double> none;
  detail::process_pair_columns_cached(x, y, none, none, sumsq(x), sumsq(y), opt, counters);
  EXPECT_EQ(counters.snapshot().norm_refreshes, 0u);
}

// ---------------------------------------------------------------------------
// Status contract

TEST(StallDetector, ClassifiesNonDecreasingActivity) {
  StallDetector d(3);
  d.observe(10.0);  // no previous value yet
  d.observe(8.0);   // decreasing: progress
  EXPECT_FALSE(d.stalled());
  d.observe(8.0);
  d.observe(8.0);
  EXPECT_FALSE(d.stalled());  // streak 2 < window 3
  d.observe(9.0);
  EXPECT_TRUE(d.stalled());  // streak 3
  d.observe(1.0);
  EXPECT_FALSE(d.stalled());  // decrease resets
}

TEST(StallDetector, ZeroActivityIsConvergenceNotStall) {
  StallDetector d(2);
  d.observe(4.0);
  d.observe(0.0);
  d.observe(0.0);
  EXPECT_FALSE(d.stalled());
  EXPECT_EQ(d.streak(), 0);
}

TEST(StatusContract, StalledRunIsDiagnosedWithQualityMetrics) {
  // tol = 0 on a single column pair: the roundoff-level dot never reaches
  // exactly zero, so every sweep performs exactly one rotation — activity is
  // constant at 1 and the run can never converge. It must report kStalled
  // (not just kMaxSweeps) plus populated diagnostics, and still return a
  // finite best-effort factorization.
  Rng rng(31);
  const Matrix a = random_gaussian(8, 2, rng);
  JacobiOptions opt;
  opt.tol = 0.0;
  opt.max_sweeps = 10;
  opt.sort = SortMode::kNone;  // sorting swaps would add activity jitter
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_FALSE(r.converged);
  EXPECT_EQ(r.status, SvdStatus::kStalled);
  EXPECT_GE(r.diagnostics.stalled_sweeps, 4);
  EXPECT_GE(r.diagnostics.scaled_residual, 0.0);
  EXPECT_LT(r.diagnostics.scaled_residual, 1e-10);  // best effort is still good
  EXPECT_GE(r.diagnostics.u_defect, 0.0);
  EXPECT_GE(r.diagnostics.v_defect, 0.0);
  for (const double s : r.sigma) EXPECT_TRUE(std::isfinite(s));
}

TEST(StatusContract, WatchdogTripsAreCountedOnStalledRuns) {
  Rng rng(32);
  const Matrix a = random_gaussian(12, 8, rng);
  JacobiOptions opt;
  opt.tol = 0.0;
  opt.max_sweeps = 12;
  opt.watchdog_sweeps = 3;
  const SvdResult r = one_sided_jacobi(a, *make_ordering("round-robin"), opt);
  ASSERT_FALSE(r.converged);
  EXPECT_GT(r.diagnostics.watchdog_trips, 0u);
}

TEST(StatusContract, ConvergedRunsReportConvergedEverywhere) {
  Rng rng(33);
  const Matrix a = random_gaussian(12, 8, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult serial = one_sided_jacobi(a, *ord);
  EXPECT_EQ(serial.status, SvdStatus::kConverged);
  const SvdResult spmd = spmd_jacobi(a, *ord);
  EXPECT_EQ(spmd.status, SvdStatus::kConverged);
  // Happy path: the heavy metrics are skipped unless requested.
  EXPECT_LT(serial.diagnostics.scaled_residual, 0.0);
  JacobiOptions full;
  full.full_diagnostics = true;
  const SvdResult diag = one_sided_jacobi(a, *ord, full);
  EXPECT_GE(diag.diagnostics.scaled_residual, 0.0);
  EXPECT_LT(diag.diagnostics.scaled_residual, 1e-13);
  EXPECT_LT(diag.diagnostics.u_defect, 1e-13);
  EXPECT_LT(diag.diagnostics.v_defect, 1e-13);
}

// ---------------------------------------------------------------------------
// Known-sigma accuracy at extreme scales

TEST(ExtremeScale, KnownSpectrumReproducedAtHugeScale) {
  Rng rng(41);
  std::vector<double> sigma = geometric_spectrum(8, 1e12);
  for (double& s : sigma) s *= 1e150;
  const Matrix a = with_spectrum(12, 8, sigma, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.diagnostics.equilibrated);
  for (std::size_t k = 0; k < sigma.size(); ++k) {
    EXPECT_TRUE(std::isfinite(r.sigma[k]));
    EXPECT_NEAR(r.sigma[k], sigma[k], sigma[0] * 1e-10);
  }
}

TEST(ExtremeScale, KnownSpectrumReproducedAtTinyScale) {
  Rng rng(42);
  std::vector<double> sigma = geometric_spectrum(8, 1e12);
  for (double& s : sigma) s *= 1e-150;
  const Matrix a = with_spectrum(12, 8, sigma, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("new-ring"));
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.diagnostics.equilibrated);
  for (std::size_t k = 0; k < sigma.size(); ++k) {
    EXPECT_GE(r.sigma[k], 0.0);
    EXPECT_NEAR(r.sigma[k], sigma[k], sigma[0] * 1e-10);
  }
}

TEST(ExtremeScale, SpmdMatchesSerialBitwiseUnderEquilibration) {
  Rng rng(43);
  std::vector<double> sigma = geometric_spectrum(8, 1e6);
  for (double& s : sigma) s *= 1e150;
  const Matrix a = with_spectrum(12, 8, sigma, rng);
  const auto ord = make_ordering("new-ring");
  const SvdResult serial = one_sided_jacobi(a, *ord);
  const SvdResult spmd = spmd_jacobi(a, *ord);
  ASSERT_TRUE(serial.converged);
  ASSERT_TRUE(spmd.converged);
  EXPECT_EQ(serial.sweeps, spmd.sweeps);
  for (std::size_t k = 0; k < serial.sigma.size(); ++k)
    EXPECT_EQ(serial.sigma[k], spmd.sigma[k]);
}

}  // namespace
}  // namespace treesvd
