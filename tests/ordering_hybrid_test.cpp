// Hybrid ordering (Section 5): ring between groups, fat-tree inside groups,
// contention-free on skinny fat-trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/hybrid.hpp"
#include "core/registry.hpp"
#include "core/validate.hpp"
#include "network/topology.hpp"
#include "sim/machine.hpp"

namespace treesvd {
namespace {

TEST(Hybrid, SupportsContract) {
  const HybridOrdering h4(4);
  EXPECT_TRUE(h4.supports(16));
  EXPECT_TRUE(h4.supports(32));
  EXPECT_FALSE(h4.supports(12));  // group size 3 not a power of two
  EXPECT_FALSE(h4.supports(8));   // group size 2 too small
  EXPECT_FALSE(h4.supports(20));  // group size 5
  EXPECT_THROW(HybridOrdering(3), std::invalid_argument);
  EXPECT_THROW(HybridOrdering(0), std::invalid_argument);
}

TEST(Hybrid, StepsAreNMinusOne) {
  EXPECT_EQ(HybridOrdering(4).sweep(16).steps(), 15);
  EXPECT_EQ(HybridOrdering(2).sweep(32).steps(), 31);
  EXPECT_EQ(HybridOrdering(8).sweep(64).steps(), 63);
}

TEST(Hybrid, OriginalOrderAfterTwoSweeps) {
  for (const auto& [groups, n] : std::vector<std::pair<int, int>>{
           {2, 8}, {2, 16}, {4, 16}, {4, 32}, {8, 32}, {4, 64}, {8, 128}}) {
    const HybridOrdering h(groups);
    std::vector<int> layout(static_cast<std::size_t>(n));
    std::iota(layout.begin(), layout.end(), 0);
    for (int k = 0; k < 2; ++k) {
      const Sweep s = h.sweep_from(layout, k);
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
    }
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(layout[static_cast<std::size_t>(i)], i) << "g=" << groups << " n=" << n;
  }
}

TEST(Hybrid, InterGroupTransfersMoveWholeBlocksOneGroupOver) {
  // At every "global" transition, at most one block's worth of columns leaves
  // each group, and all inter-group movement goes one ring direction.
  const int groups = 4;
  const int n = 32;
  const int gsz = n / groups;
  const int bs = gsz / 2;
  const Sweep s = HybridOrdering(groups).sweep(n);
  const int slots_per_group = gsz;
  for (int t = 0; t < s.steps(); ++t) {
    std::vector<int> out_of_group(static_cast<std::size_t>(groups), 0);
    for (const ColumnMove& mv : s.moves(t)) {
      const int gf = mv.from_slot / slots_per_group;
      const int gt = mv.to_slot / slots_per_group;
      if (gf == gt) continue;
      EXPECT_EQ(gt, (gf + groups - 1) % groups)
          << "inter-group movement must be one hop in the ring direction (step " << t << ")";
      ++out_of_group[static_cast<std::size_t>(gf)];
    }
    for (int g = 0; g < groups; ++g)
      EXPECT_LE(out_of_group[static_cast<std::size_t>(g)], bs)
          << "more than one block left group " << g << " at step " << t;
  }
}

TEST(Hybrid, IntraGroupPhaseHasNoInterGroupTraffic) {
  // The first gsz-2 transitions belong to the intra-group fat-tree sweep.
  const int groups = 4;
  const int n = 32;
  const int gsz = n / groups;
  const Sweep s = HybridOrdering(groups).sweep(n);
  for (int t = 0; t + 1 < gsz - 1; ++t) {
    for (const ColumnMove& mv : s.moves(t)) {
      EXPECT_EQ(mv.from_slot / gsz, mv.to_slot / gsz)
          << "transition " << t << " should be intra-group";
    }
  }
}

TEST(Hybrid, FirstSuperStepCoversAllIntraGroupPairs) {
  const int groups = 2;
  const int n = 16;
  const int gsz = n / groups;
  const Sweep s = HybridOrdering(groups).sweep(n);
  std::set<std::pair<int, int>> got;
  for (int t = 0; t < gsz - 1; ++t)
    for (const auto& p : s.pairs(t))
      got.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
  for (int g = 0; g < groups; ++g)
    for (int a = g * gsz; a < (g + 1) * gsz; ++a)
      for (int b = a + 1; b < (g + 1) * gsz; ++b)
        EXPECT_TRUE(got.count({a, b})) << "intra-group pair (" << a << "," << b << ") missing";
}

TEST(Hybrid, ContentionFreeOnCm5WithSmallBlocks) {
  // The paper's claim: choose the block size so the skinny levels never carry
  // more streams than their capacity. With groups = n/4 (the smallest blocks)
  // the hybrid ordering runs contention-free on the CM-5 model.
  const int n = 64;
  const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
  const auto run = model_run(HybridOrdering(16), topo, n, CostParams{}, 2);
  EXPECT_LE(run.per_sweep_total.max_contention, 1.0 + 1e-9);
}

TEST(Hybrid, LessContentionThanFatTreeOnSkinnyTrees) {
  const int n = 64;
  for (auto prof : {CapacityProfile::kConstant, CapacityProfile::kCm5}) {
    const FatTreeTopology topo(n / 2, prof);
    const auto hybrid = model_run(HybridOrdering(16), topo, n, CostParams{}, 1);
    const auto fat = model_run(*make_ordering("fat-tree"), topo, n, CostParams{}, 1);
    EXPECT_LT(hybrid.per_sweep_total.max_contention, fat.per_sweep_total.max_contention)
        << to_string(prof);
  }
}

TEST(Hybrid, FewerGlobalTransitionsThanPureRing) {
  // "It is expected that the hybrid ordering will be the most efficient one
  // on the CM5 since it ... reduces the number of global communications
  // required by the ring orderings."
  const int n = 64;
  const Sweep hybrid = HybridOrdering(8).sweep(n);
  const Sweep ring = make_ordering("new-ring")->sweep(n);
  auto top_transitions = [](const Sweep& s) {
    int top = 0;
    for (int lv = s.leaves(); lv > 1; lv /= 2) ++top;
    int count = 0;
    for (int t = 0; t < s.steps(); ++t) {
      int deepest = 0;
      for (const ColumnMove& mv : s.moves(t))
        deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
      if (deepest == top) ++count;
    }
    return count;
  };
  EXPECT_LT(top_transitions(hybrid), top_transitions(ring));
}

}  // namespace
}  // namespace treesvd
