// Tests for the util substrate: RNG, table formatter, CLI parser, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS
#include "analysis/fuzz.hpp"
#endif

namespace treesvd {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(99);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroAndOne) {
  Rng r(5);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(std::size_t{42});
  const std::string s = t.str();
  EXPECT_NE(s.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 42    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("v"), std::invalid_argument);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=64", "--verbose", "--name=fat-tree", "--x=2.5"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 64);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("name", ""), "fat-tree");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_EQ(cli.get_int("missing", -1), -1);
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(100, [&](std::size_t i) { total.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(total.load(), 20L * (99 * 100 / 2));
}

TEST(ThreadPool, ZeroAndSingleCounts) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  pool.parallel_for(57, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 57);
}

TEST(ThreadPool, TaskExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(200,
                                 [&](std::size_t i) {
                                   calls.fetch_add(1);
                                   if (i == 57) throw std::runtime_error("task 57 failed");
                                 }),
               std::runtime_error);
  // Iterations are not cancelled: every task still ran despite the throw.
  EXPECT_EQ(calls.load(), 200);
}

TEST(ThreadPool, ExceptionInSerialFallbackPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(3,
                                 [](std::size_t i) {
                                   if (i == 1) throw std::logic_error("boom");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, UsableAfterTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(50, [](std::size_t) { throw std::runtime_error("all fail"); }),
               std::runtime_error);
  std::atomic<int> calls{0};
  pool.parallel_for(50, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPool, GrainRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ThreadPool, TinyCountRunsOnCallingThread) {
  // Auto grain: counts at or below kAutoInlineBelow never wake the workers.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  for (std::size_t count = 1; count <= ThreadPool::kAutoInlineBelow; ++count) {
    std::atomic<int> off_thread{0};
    pool.parallel_for(count, [&](std::size_t) {
      if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
    });
    EXPECT_EQ(off_thread.load(), 0) << "count=" << count;
  }
}

TEST(ThreadPool, CountWithinGrainRunsOnCallingThread) {
  // An explicit grain covering the whole range is a request to stay inline.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  std::atomic<int> calls{0};
  pool.parallel_for(100,
                    [&](std::size_t) {
                      calls.fetch_add(1);
                      if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
                    },
                    100);
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesWithExplicitGrain) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(200,
                                 [&](std::size_t i) {
                                   calls.fetch_add(1);
                                   if (i == 19) throw std::runtime_error("chunk member failed");
                                 },
                                 8),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 200);
}

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS

// Adversarial-schedule re-runs: the pool's contracts (exactly-once, exception
// propagation, inline fast path) must survive the seeded schedule fuzzer
// permuting chunk claim order and injecting yields. Fixed seeds keep failures
// reproducible.

TEST(ThreadPoolFuzzed, GrainBoundariesSurvivePermutedSchedules) {
  ThreadPool pool(4);
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{77}, std::uint64_t{2026}}) {
    analysis::FuzzPlan plan;
    plan.seed = seed;
    analysis::ScopedFuzzer fuzz(plan);
    // Grains straddling the count (257) exercise the short final chunk under
    // every permutation of claim order.
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                    std::size_t{64}, std::size_t{255}}) {
      std::vector<std::atomic<int>> hits(257);
      pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
      for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "seed=" << seed << " grain=" << grain;
    }
    EXPECT_GT(fuzz->decisions(), 0u) << "fuzzer saw no pool decision points";
  }
}

TEST(ThreadPoolFuzzed, SingleChunkBatchSurvivesFuzzer) {
  // count == grain stays on the calling thread; the fuzzer must not break
  // (or accidentally parallelise) the inline path.
  ThreadPool pool(4);
  analysis::FuzzPlan plan;
  plan.seed = 9001;
  analysis::ScopedFuzzer fuzz(plan);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  std::atomic<int> calls{0};
  pool.parallel_for(64,
                    [&](std::size_t) {
                      calls.fetch_add(1);
                      if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
                    },
                    64);
  EXPECT_EQ(calls.load(), 64);
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPoolFuzzed, ExceptionContractSurvivesPermutedSchedules) {
  ThreadPool pool(4);
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{1234}}) {
    analysis::FuzzPlan plan;
    plan.seed = seed;
    analysis::ScopedFuzzer fuzz(plan);
    std::atomic<int> calls{0};
    EXPECT_THROW(pool.parallel_for(200,
                                   [&](std::size_t i) {
                                     calls.fetch_add(1);
                                     if (i == 19) throw std::runtime_error("fuzzed chunk failed");
                                   },
                                   8),
                 std::runtime_error);
    // No iteration is cancelled, whatever order the chunks were claimed in.
    EXPECT_EQ(calls.load(), 200) << "seed=" << seed;
    std::atomic<int> again{0};
    pool.parallel_for(50, [&](std::size_t) { again.fetch_add(1); }, 4);
    EXPECT_EQ(again.load(), 50) << "pool unusable after fuzzed exception, seed=" << seed;
  }
}

#endif  // TREESVD_ANALYSIS

}  // namespace
}  // namespace treesvd
