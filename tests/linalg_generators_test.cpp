// Tests for the test-matrix generators.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace treesvd {
namespace {

TEST(Generators, GaussianShapeAndVariation) {
  Rng rng(41);
  const Matrix a = random_gaussian(30, 20, rng);
  EXPECT_EQ(a.rows(), 30u);
  EXPECT_EQ(a.cols(), 20u);
  EXPECT_GT(a.frobenius_norm(), 0.0);
  // Mean of entries should be near zero for iid normals.
  double sum = 0.0;
  for (double v : a.data()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(a.data().size()), 0.0, 0.2);
}

TEST(Generators, GaussianRejectsZeroDims) {
  Rng rng(41);
  EXPECT_THROW(random_gaussian(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(random_gaussian(3, 0, rng), std::invalid_argument);
}

TEST(Generators, OrthonormalColumns) {
  Rng rng(42);
  const Matrix q = random_orthonormal(25, 10, rng);
  EXPECT_LT(orthonormality_defect(q), 1e-12);
}

TEST(Generators, OrthonormalRequiresTall) {
  Rng rng(42);
  EXPECT_THROW(random_orthonormal(5, 10, rng), std::invalid_argument);
}

TEST(Generators, GeometricSpectrumEndpointsAndRatio) {
  const auto s = geometric_spectrum(6, 1000.0);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_NEAR(s[5], 1.0 / 1000.0, 1e-12);
  for (std::size_t k = 1; k < 6; ++k) EXPECT_LT(s[k], s[k - 1]);
  // Constant ratio between consecutive values.
  const double r0 = s[1] / s[0];
  for (std::size_t k = 2; k < 6; ++k) EXPECT_NEAR(s[k] / s[k - 1], r0, 1e-12);
}

TEST(Generators, GeometricSpectrumEdgeCases) {
  EXPECT_EQ(geometric_spectrum(1, 100.0).size(), 1u);
  EXPECT_DOUBLE_EQ(geometric_spectrum(1, 100.0)[0], 1.0);
  EXPECT_THROW(geometric_spectrum(0, 10.0), std::invalid_argument);
  EXPECT_THROW(geometric_spectrum(4, 0.5), std::invalid_argument);
}

TEST(Generators, WithSpectrumReproducesSigma) {
  Rng rng(43);
  const std::vector<double> sigma = {4.0, 2.0, 1.0, 0.1};
  const Matrix a = with_spectrum(10, 4, sigma, rng);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(sv[k], sigma[k], 1e-8);
}

TEST(Generators, WithSpectrumValidatesArguments) {
  Rng rng(43);
  EXPECT_THROW(with_spectrum(4, 8, std::vector<double>(8, 1.0), rng), std::invalid_argument);
  EXPECT_THROW(with_spectrum(8, 4, std::vector<double>(3, 1.0), rng), std::invalid_argument);
}

TEST(Generators, RankDeficientRank) {
  Rng rng(44);
  const Matrix a = rank_deficient(20, 10, 4, rng);
  const auto sv = singular_values_oracle(a);
  // The oracle squares A, so exact zeros surface as ~sqrt(eps) ~ 1e-8; use a
  // threshold comfortably above that noise floor.
  int rank = 0;
  for (double s : sv)
    if (s > 1e-6) ++rank;
  EXPECT_EQ(rank, 4);
}

TEST(Generators, RankDeficientRejectsRankAboveN) {
  Rng rng(44);
  EXPECT_THROW(rank_deficient(10, 5, 6, rng), std::invalid_argument);
}

TEST(Generators, HilbertEntries) {
  const Matrix h = hilbert(4);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 2), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(h(3, 3), 1.0 / 7.0);
  // Symmetric and positive definite: all oracle singular values positive.
  const auto sv = singular_values_oracle(h);
  for (double s : sv) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace treesvd
