// Householder QR tests.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generators.hpp"
#include "linalg/qr.hpp"

namespace treesvd {
namespace {

TEST(Qr, ReconstructsA) {
  Rng rng(61);
  const Matrix a = random_gaussian(20, 8, rng);
  const HouseholderQr qr(a);
  Matrix qrprod(20, 8);
  const Matrix r = qr.r();
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i <= j; ++i) qrprod(i, j) = r(i, j);
  qr.apply_q(qrprod);
  EXPECT_LT((a - qrprod).frobenius_norm() / a.frobenius_norm(), 1e-13);
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(62);
  const Matrix a = random_gaussian(12, 6, rng);
  const Matrix r = HouseholderQr(a).r();
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = j + 1; i < 6; ++i) EXPECT_EQ(r(i, j), 0.0);
}

TEST(Qr, ThinQHasOrthonormalColumns) {
  Rng rng(63);
  const Matrix a = random_gaussian(30, 10, rng);
  const Matrix q = HouseholderQr(a).thin_q();
  EXPECT_EQ(q.rows(), 30u);
  EXPECT_EQ(q.cols(), 10u);
  EXPECT_LT(orthonormality_defect(q), 1e-13);
}

TEST(Qr, QtQIsIdentityAction) {
  Rng rng(64);
  const Matrix a = random_gaussian(16, 5, rng);
  const HouseholderQr qr(a);
  Matrix b = random_gaussian(16, 3, rng);
  const Matrix b0 = b;
  qr.apply_q(b);
  qr.apply_qt(b);
  EXPECT_LT((b - b0).frobenius_norm() / b0.frobenius_norm(), 1e-13);
}

TEST(Qr, SquareMatrix) {
  Rng rng(65);
  const Matrix a = random_gaussian(7, 7, rng);
  const HouseholderQr qr(a);
  Matrix qrprod(7, 7);
  const Matrix r = qr.r();
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i <= j; ++i) qrprod(i, j) = r(i, j);
  qr.apply_q(qrprod);
  EXPECT_LT((a - qrprod).frobenius_norm() / a.frobenius_norm(), 1e-13);
}

TEST(Qr, HandlesZeroColumns) {
  Matrix a(6, 3);
  a(0, 0) = 2.0;  // second and third columns entirely zero
  const HouseholderQr qr(a);
  const Matrix r = qr.r();
  EXPECT_NEAR(std::fabs(r(0, 0)), 2.0, 1e-15);
  EXPECT_NEAR(r(1, 1), 0.0, 1e-15);
}

TEST(Qr, RejectsWideMatrices) {
  EXPECT_THROW(HouseholderQr(Matrix(3, 5)), std::invalid_argument);
}

TEST(Qr, RankDeficientStillFactorises) {
  Rng rng(66);
  const Matrix a = rank_deficient(18, 9, 3, rng);
  const HouseholderQr qr(a);
  Matrix qrprod(18, 9);
  const Matrix r = qr.r();
  for (std::size_t j = 0; j < 9; ++j)
    for (std::size_t i = 0; i <= j; ++i) qrprod(i, j) = r(i, j);
  qr.apply_q(qrprod);
  EXPECT_LT((a - qrprod).frobenius_norm() / a.frobenius_norm(), 1e-12);
}

}  // namespace
}  // namespace treesvd
