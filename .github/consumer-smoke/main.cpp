// Minimal downstream consumer: links the installed package and runs one SVD.
#include "treesvd.hpp"

#include <cstdio>

int main() {
  using namespace treesvd;
  Rng rng(1);
  const Matrix a = random_gaussian(20, 8, rng);
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
  std::printf("consumer ok: sigma0=%.3f converged=%d\n", r.sigma[0],
              static_cast<int>(r.converged));
  return r.converged ? 0 : 1;
}
