// treesvd_chaos — chaos acceptance harness for the fault-tolerant SPMD engine.
//
// For each seed the tool runs spmd_jacobi twice on the same matrix: once
// fault-free, and once under a hostile deterministic FaultPlan (drops,
// duplicates, corruption, delays, one rank kill) with the reliable transport
// and sweep-checkpoint recovery enabled. The contract is the repo's headline
// robustness claim: every surviving chaos run must be *bit-identical* to the
// fault-free run — same sweeps, rotation/swap counts, kernel pass counters,
// and bitwise-equal sigma/U/V. RecoveryStats for each seed are emitted as
// machine-readable JSON (stdout, or --json=PATH); the exit status is the
// contract: 0 means every seed reproduced the fault-free result, 1 means at
// least one diverged (or died), 2 means usage error. CI archives the JSON as
// an artifact so fault/recovery counters are diffable across commits.
//
// --backend selects the transport under test: "inproc" (default) replays the
// faults against the shared-memory mailboxes, "socket" runs every rank as its
// own OS process over UNIX-domain sockets, so the same plan becomes physical —
// dropped frames are closed connections, delays are real stalls, and the rank
// kill is a SIGKILL of a live process followed by respawn + checkpoint
// rollback. The bit-identity contract is the same either way.
//
// Usage:
//   treesvd_chaos [--seeds=42,43,44] [--n=8] [--rows=16] [--ordering=new-ring]
//                 [--backend=inproc|socket] [--drop=0.12] [--dup=0.08]
//                 [--corrupt=0.06] [--delay=0.04] [--kill-rank=2]
//                 [--kill-at-op=31] [--max-retries=12] [--json=PATH]

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/spmd.hpp"
#include "util/cli.hpp"

namespace treesvd::chaos {
namespace {

/// First divergence between a chaos run and the fault-free reference, as a
/// diagnostic string; empty when the runs are bit-identical.
std::string first_divergence(const SvdResult& got, const SvdResult& want) {
  if (got.converged != want.converged) return "converged flag differs";
  if (got.sweeps != want.sweeps)
    return "sweeps " + std::to_string(got.sweeps) + " != " + std::to_string(want.sweeps);
  if (got.rotations != want.rotations) return "rotation count differs";
  if (got.swaps != want.swaps) return "swap count differs";
  for (std::size_t k = 0; k < want.sigma.size(); ++k)
    if (got.sigma[k] != want.sigma[k]) return "sigma[" + std::to_string(k) + "] differs bitwise";
  if (!(got.u == want.u)) return "U differs bitwise";
  if (!(got.v == want.v)) return "V differs bitwise";
  const KernelStats& g = got.kernel_stats;
  const KernelStats& w = want.kernel_stats;
  if (g.pairs != w.pairs || g.dot_passes != w.dot_passes || g.gram_passes != w.gram_passes ||
      g.rotate_passes != w.rotate_passes || g.norm_refreshes != w.norm_refreshes)
    return "kernel pass counters differ";
  return {};
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string recovery_json(const mp::RecoveryStats& s) {
  std::ostringstream os;
  os << "{\"drops_seen\": " << s.drops_seen
     << ", \"duplicates_injected\": " << s.duplicates_injected
     << ", \"corruptions_injected\": " << s.corruptions_injected
     << ", \"delays_seen\": " << s.delays_seen << ", \"kills\": " << s.kills
     << ", \"stalls\": " << s.stalls << ", \"corruptions_detected\": " << s.corruptions_detected
     << ", \"duplicates_suppressed\": " << s.duplicates_suppressed
     << ", \"retries\": " << s.retries << ", \"resends\": " << s.resends
     << ", \"virtual_backoff\": " << s.virtual_backoff
     << ", \"checkpoints\": " << s.checkpoints << ", \"rollbacks\": " << s.rollbacks
     << ", \"watchdog_trips\": " << s.watchdog_trips
     << ", \"norm_rereductions\": " << s.norm_rereductions << "}";
  return os.str();
}

struct SeedReport {
  std::uint64_t seed = 0;
  bool bit_identical = false;
  std::string detail;  ///< divergence or exception text; empty on success
  mp::RecoveryStats recovery;
};

std::vector<std::uint64_t> parse_seeds(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(std::stoull(item));
  return out;
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout
        << "usage: treesvd_chaos [--seeds=42,43,44] [--n=8] [--rows=16]\n"
           "                     [--ordering=new-ring] [--backend=inproc|socket]\n"
           "                     [--drop=0.12] [--dup=0.08] [--corrupt=0.06]\n"
           "                     [--delay=0.04] [--kill-rank=2] [--kill-at-op=31]\n"
           "                     [--max-retries=12] [--json=PATH]\n";
    return 0;
  }

  const std::string backend = cli.get("backend", "inproc");
  if (backend != "inproc" && backend != "socket") {
    std::cerr << "treesvd_chaos: --backend must be inproc or socket, got \"" << backend
              << "\"\n";
    return 2;
  }

  const int n = static_cast<int>(cli.get_int("n", 8));
  const int rows = static_cast<int>(cli.get_int("rows", n + 8));
  const std::string ordering_name = cli.get("ordering", "new-ring");
  if (n < 4 || n % 2 != 0 || rows < n) {
    std::cerr << "treesvd_chaos: need even n >= 4 and rows >= n\n";
    return 2;
  }
  const auto seeds = parse_seeds(cli.get("seeds", "42,43,44"));
  if (seeds.empty()) {
    std::cerr << "treesvd_chaos: --seeds produced no seeds\n";
    return 2;
  }

  OrderingPtr ordering;
  try {
    ordering = make_ordering(ordering_name);
  } catch (const std::invalid_argument& e) {
    std::cerr << "treesvd_chaos: " << e.what() << "\n";
    return 2;
  }

  // Fixed matrix; the seeds vary only the fault schedule.
  Rng rng(2026);
  const Matrix a =
      random_gaussian(static_cast<std::size_t>(rows), static_cast<std::size_t>(n), rng);
  const SvdResult reference = spmd_jacobi(a, *ordering);

  SpmdTransport transport;
  transport.reliable.enabled = true;
  transport.reliable.max_retries = static_cast<int>(cli.get_int("max-retries", 12));
  transport.faults.enabled = true;
  transport.faults.drop_prob = cli.get_double("drop", 0.12);
  transport.faults.duplicate_prob = cli.get_double("dup", 0.08);
  transport.faults.corrupt_prob = cli.get_double("corrupt", 0.06);
  transport.faults.delay_prob = cli.get_double("delay", 0.04);
  transport.faults.kill_rank = static_cast<int>(cli.get_int("kill-rank", 2));
  transport.faults.kill_at_op = static_cast<std::uint64_t>(cli.get_int("kill-at-op", 31));
  transport.recovery.checkpoint_sweeps = 1;
  transport.recovery.max_rollbacks = 8;
  if (backend == "socket") transport.backend = mp::Backend::kSocket;

  std::vector<SeedReport> reports;
  bool pass = true;
  for (const std::uint64_t seed : seeds) {
    SeedReport r;
    r.seed = seed;
    transport.faults.seed = seed;
    try {
      SpmdStats stats;
      const SvdResult chaotic = spmd_jacobi(a, *ordering, {}, &stats, &transport);
      r.detail = first_divergence(chaotic, reference);
      r.bit_identical = r.detail.empty();
      r.recovery = stats.recovery;
    } catch (const std::exception& e) {
      // A plan that exceeds the retry/rollback budget (or a config the
      // engine rejects) is a failed seed, not a harness crash.
      r.detail = e.what();
    }
    pass = pass && r.bit_identical;
    reports.push_back(std::move(r));
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_chaos\",\n  \"version\": 1,\n";
  os << "  \"n\": " << n << ",\n  \"rows\": " << rows << ",\n";
  os << "  \"ordering\": \"" << ordering_name << "\",\n";
  os << "  \"backend\": {\"kind\": \"" << backend << "\"";
  if (backend == "socket")
    os << ", \"recv_deadline_ms\": " << transport.socket.recv_deadline_ms
       << ", \"heartbeat_interval_ms\": " << transport.socket.heartbeat_interval_ms
       << ", \"heartbeat_timeout_ms\": " << transport.socket.heartbeat_timeout_ms
       << ", \"delay_stall_ms\": " << transport.socket.delay_stall_ms;
  os << "},\n";
  os << "  \"plan\": {\"drop\": " << transport.faults.drop_prob
     << ", \"dup\": " << transport.faults.duplicate_prob
     << ", \"corrupt\": " << transport.faults.corrupt_prob
     << ", \"delay\": " << transport.faults.delay_prob
     << ", \"kill_rank\": " << transport.faults.kill_rank
     << ", \"kill_at_op\": " << transport.faults.kill_at_op << "},\n";
  os << "  \"pass\": " << (pass ? "true" : "false") << ",\n  \"results\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SeedReport& r = reports[i];
    os << (i ? "," : "") << "\n    {\"seed\": " << r.seed
       << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false");
    if (!r.detail.empty()) os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    os << ", \"recovery\": " << recovery_json(r.recovery) << "}";
  }
  os << "\n  ]\n}\n";

  const std::string json = os.str();
  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "treesvd_chaos: cannot write " << path << "\n";
      return 2;
    }
    f << json;
    std::cout << (pass ? "PASS" : "FAIL") << ": " << reports.size()
              << " seeded chaos runs vs fault-free reference, report written to " << path << "\n";
  }
  if (!pass)
    for (const SeedReport& r : reports)
      if (!r.bit_identical)
        std::cerr << "divergence: seed " << r.seed << ": " << r.detail << "\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::chaos

int main(int argc, char** argv) { return treesvd::chaos::main(argc, argv); }
