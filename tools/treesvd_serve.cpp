// treesvd_serve — many-SVD serving front-end over the batched engine.
//
// Boots an SvdServer (svd/serve.hpp: thread-per-shard, bounded MPSC
// submission queues with backpressure, preallocated SoA arena slabs), replays
// a seeded synthetic request trace against it, verifies a sample of served
// results bitwise against direct sequential solves, and dumps the latency
// histogram and throughput counters as JSON.
//
// Exit status is the contract: 0 when every verified result matches the
// sequential engine bit-for-bit and the histogram is sane (count == requests,
// p50 <= p99, nonzero QPS); 1 on any violation; 2 on usage error.
//
// --chaos flips the tool into the deterministic serve-chaos gate: three
// seeded fault legs (mixed poison/throw/expire with shard kills; overload
// with a stalled shard and deadline shedding; repeat-offender quarantine),
// each replayed to prove the fault counters are bit-reproducible. The gate
// fails on any lost request (a submission that never reached a terminal
// state), any healthy payload that diverges from the sequential solve, or
// any counter drift between replays — the serving counterpart of the
// transport chaos gate.
//
// Usage:
//   treesvd_serve [--rows=32] [--cols=16] [--ordering=round-robin]
//                 [--shards=2] [--lane-width=8] [--queue-cap=64]
//                 [--requests=512] [--seed=2026] [--verify=32]
//                 [--scalar] [--json=PATH]
//   treesvd_serve --chaos [--rows=12] [--cols=8] [--ordering=round-robin]
//                 [--requests=96] [--seed=2026] [--scalar] [--json=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/serve.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace treesvd::serve_tool {
namespace {

std::string histogram_json(const LatencyHistogram& h) {
  std::ostringstream os;
  os << "{\"count\": " << h.count() << ", \"p50_ns\": " << h.p50_ns()
     << ", \"p99_ns\": " << h.p99_ns() << ", \"max_ns\": " << h.max_ns()
     << ", \"log2_buckets\": [";
  // Trailing zero buckets are elided; what remains is the occupied prefix.
  std::size_t last = 0;
  for (std::size_t k = 0; k < LatencyHistogram::kBuckets; ++k)
    if (h.buckets()[k] != 0) last = k + 1;
  for (std::size_t k = 0; k < last; ++k) os << (k != 0 ? "," : "") << h.buckets()[k];
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Chaos gate
// ---------------------------------------------------------------------------

/// Sentinel planted in every result slot before submission; any terminal
/// completion overwrites it, so a surviving sentinel is a lost request.
constexpr int kSentinelSweeps = -12345;

/// The deterministic subset of ServeStats a replay must reproduce
/// bit-for-bit. (requeued and stuck_detected depend on batch composition and
/// supervisor poll timing, so they are reported but not replay-gated.)
struct ChaosCounters {
  std::uint64_t submitted = 0, completed = 0, solved = 0, expired = 0, shed = 0, failed = 0,
                rejected = 0, kills = 0, restarts = 0, quarantines = 0, stalls_injected = 0;

  static ChaosCounters from(const ServeStats& s) {
    return {s.submitted, s.completed, s.solved,    s.expired,     s.shed,           s.failed,
            s.rejected,  s.kills,     s.restarts, s.quarantines, s.stalls_injected};
  }
  bool operator==(const ChaosCounters&) const = default;
};

struct LegReport {
  std::string name;
  bool ok = true;
  std::vector<std::string> errors;
  ServeStats stats;

  void fail(std::string why) {
    ok = false;
    std::cerr << "treesvd_serve[chaos:" << name << "]: " << why << "\n";
    errors.push_back(std::move(why));
  }
  void check(bool cond, const std::string& why) {
    if (!cond) fail(why);
  }
};

struct ChaosConfig {
  std::size_t rows = 12;
  std::size_t cols = 8;
  std::size_t requests = 96;
  std::uint64_t seed = 2026;
  bool scalar = false;
  const Ordering* ordering = nullptr;
};

void expect_counter(LegReport& leg, const char* what, std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    leg.fail(std::string(what) + " = " + std::to_string(got) + ", expected " +
             std::to_string(want));
  }
}

/// Common post-run audit: no submission may be lost (sentinel survived or
/// accounting mismatch), and every request must sit in exactly the terminal
/// state its planned fault dictates — healthy ones bitwise equal to the
/// sequential solve.
void audit_results(LegReport& leg, const ChaosConfig& cfg, const ServeFaultPlan& plan,
                   const std::vector<Matrix>& inputs, const std::vector<SvdResult>& results,
                   const JacobiOptions& jopt) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SvdResult& r = results[i];
    if (r.sweeps == kSentinelSweeps) {
      leg.fail("request " + std::to_string(i) + " LOST: never reached a terminal state");
      continue;
    }
    switch (plan.request_fault(static_cast<std::uint64_t>(i))) {
      case ServeFaultPlan::RequestFault::kPoison:
        leg.check(r.status == SvdStatus::kFailed && !r.diagnostics.error.empty(),
                  "poison request " + std::to_string(i) + " not kFailed-with-context (status " +
                      to_string(r.status) + ")");
        break;
      case ServeFaultPlan::RequestFault::kThrow:
        leg.check(r.status == SvdStatus::kFailed && !r.diagnostics.error.empty(),
                  "throw request " + std::to_string(i) + " not kFailed-with-context (status " +
                      to_string(r.status) + ")");
        break;
      case ServeFaultPlan::RequestFault::kExpire:
        leg.check(r.status == SvdStatus::kDeadlineExpired,
                  "expire request " + std::to_string(i) + " not kDeadlineExpired (status " +
                      to_string(r.status) + ")");
        break;
      case ServeFaultPlan::RequestFault::kNone: {
        const SvdResult ref = one_sided_jacobi(inputs[i], *cfg.ordering, jopt);
        leg.check(result_digest(r) == result_digest(ref),
                  "healthy request " + std::to_string(i) + " diverged from sequential solve");
        break;
      }
    }
  }
  leg.check(leg.stats.completed == results.size(),
            "completed = " + std::to_string(leg.stats.completed) + ", expected " +
                std::to_string(results.size()));
  leg.check(leg.stats.latency.count() == leg.stats.completed,
            "latency count != completed");
  leg.check(leg.stats.completed == leg.stats.solved + leg.stats.expired + leg.stats.failed,
            "terminal accounting broken: completed != solved + expired + failed");
}

/// Leg A — mixed faults: seeded poison inputs (NaN), injected solver throws,
/// pre-expired deadlines, plus a double shard kill (restart + requeue, no
/// quarantine). The healthy majority must come through bitwise clean.
LegReport run_mixed_leg(const ChaosConfig& cfg) {
  LegReport leg;
  leg.name = "mixed";

  ServeOptions opt;
  opt.rows = cfg.rows;
  opt.cols = cfg.cols;
  opt.shards = 2;
  opt.queue_capacity = 64;
  opt.batch.lane_width = 4;
  opt.batch.use_simd = !cfg.scalar;
  opt.supervisor.poll_micros = 200;
  opt.supervisor.quarantine_after = 2;
  ServeFaultPlan& fp = opt.faults;
  fp.enabled = true;
  fp.seed = cfg.seed;
  fp.poison_prob = 0.12;
  fp.throw_prob = 0.10;
  fp.expire_prob = 0.10;
  fp.kill_repeat = 2;
  // The kill target must be a fault-free request: a poisoned/expired one
  // would be retired before the kill check ever sees it.
  fp.kill_request = -1;
  for (std::uint64_t id = cfg.requests / 3; id < cfg.requests; ++id) {
    if (fp.request_fault(id) == ServeFaultPlan::RequestFault::kNone) {
      fp.kill_request = static_cast<long long>(id);
      break;
    }
  }

  Rng rng(cfg.seed);
  std::vector<Matrix> inputs;
  inputs.reserve(cfg.requests);
  std::size_t npoison = 0, nthrow = 0, nexpire = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    inputs.push_back(random_gaussian(cfg.rows, cfg.cols, rng));
    switch (fp.request_fault(static_cast<std::uint64_t>(i))) {
      case ServeFaultPlan::RequestFault::kPoison:
        inputs.back()(0, 0) = std::numeric_limits<double>::quiet_NaN();
        ++npoison;
        break;
      case ServeFaultPlan::RequestFault::kThrow: ++nthrow; break;
      case ServeFaultPlan::RequestFault::kExpire: ++nexpire; break;
      case ServeFaultPlan::RequestFault::kNone: break;
    }
  }
  std::vector<SvdResult> results(cfg.requests);
  for (auto& r : results) r.sweeps = kSentinelSweeps;

  SvdServer server(*cfg.ordering, opt);
  server.start();
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    SubmitOptions so;
    if (fp.request_fault(static_cast<std::uint64_t>(i)) == ServeFaultPlan::RequestFault::kExpire)
      so.deadline_ns = 1;  // unmeetable: expires at batch formation, never solves
    if (server.submit(inputs[i], &results[i], so) != SubmitOutcome::kAccepted)
      leg.fail("submission " + std::to_string(i) + " not accepted");
  }
  server.wait_idle();
  server.stop();
  leg.stats = server.stats();

  audit_results(leg, cfg, fp, inputs, results, opt.batch.jacobi);
  expect_counter(leg, "expired", leg.stats.expired, nexpire);
  expect_counter(leg, "failed", leg.stats.failed, npoison + nthrow);
  expect_counter(leg, "solved", leg.stats.solved, cfg.requests - nexpire - npoison - nthrow);
  expect_counter(leg, "kills", leg.stats.kills, fp.kill_repeat);
  expect_counter(leg, "restarts", leg.stats.restarts, fp.kill_repeat);
  expect_counter(leg, "quarantines", leg.stats.quarantines, 0);
  return leg;
}

/// Leg B — overload and shedding: one shard, stalled by the plan until the
/// whole trace is submitted, a queue full of already-expired requests, and a
/// healthy wave admitted under kShedExpired that must evict them. Also pins
/// the watermark readiness transitions, which are deterministic here because
/// the stall forbids any completion while the backlog builds.
LegReport run_overload_leg(const ChaosConfig& cfg) {
  LegReport leg;
  leg.name = "overload";

  const std::size_t wave = 8;
  ServeOptions opt;
  opt.rows = cfg.rows;
  opt.cols = cfg.cols;
  opt.shards = 1;
  opt.queue_capacity = wave;
  opt.batch.lane_width = 4;
  opt.batch.use_simd = !cfg.scalar;
  ServeFaultPlan& fp = opt.faults;
  fp.enabled = true;
  fp.seed = cfg.seed;
  fp.stall_shard = 0;
  fp.stall_until_submitted = 2 * wave;  // event-released: when the trace is in
  fp.stall_micros = 30000000;           // 30 s wall-clock safety bound

  Rng rng(cfg.seed + 1);
  std::vector<Matrix> inputs;
  inputs.reserve(2 * wave);
  for (std::size_t i = 0; i < 2 * wave; ++i)
    inputs.push_back(random_gaussian(cfg.rows, cfg.cols, rng));
  std::vector<SvdResult> results(2 * wave);
  for (auto& r : results) r.sweeps = kSentinelSweeps;

  SvdServer server(*cfg.ordering, opt);
  server.start();
  leg.check(server.ready(), "server not ready before any load");
  // Fill the queue with doomed requests (the shard is stalled, so none can
  // complete and the backlog is exact).
  for (std::size_t i = 0; i < wave; ++i) {
    SubmitOptions so;
    so.deadline_ns = 1;
    if (server.submit(inputs[i], &results[i], so) != SubmitOutcome::kAccepted)
      leg.fail("expired-wave submission " + std::to_string(i) + " not accepted");
  }
  leg.check(!server.ready(), "backlog at the high watermark did not drop readiness");
  // The healthy wave sheds its way in.
  for (std::size_t i = wave; i < 2 * wave; ++i) {
    SubmitOptions so;
    so.policy = SubmitPolicy::kShedExpired;
    if (server.submit(inputs[i], &results[i], so) != SubmitOutcome::kAccepted)
      leg.fail("healthy-wave submission " + std::to_string(i) + " not accepted");
  }
  server.wait_idle();
  leg.check(server.ready(), "server not ready again after the backlog drained");
  server.stop();
  leg.stats = server.stats();

  // The doomed wave must be shed-expired; the healthy wave must be real
  // solves, bitwise equal to the sequential engine.
  for (std::size_t i = 0; i < wave; ++i) {
    const SvdResult& r = results[i];
    leg.check(r.sweeps != kSentinelSweeps,
              "doomed request " + std::to_string(i) + " LOST");
    leg.check(r.status == SvdStatus::kDeadlineExpired,
              "doomed request " + std::to_string(i) + " not kDeadlineExpired (status " +
                  to_string(r.status) + ")");
  }
  for (std::size_t i = wave; i < 2 * wave; ++i) {
    const SvdResult& r = results[i];
    leg.check(r.sweeps != kSentinelSweeps, "healthy request " + std::to_string(i) + " LOST");
    if (r.sweeps == kSentinelSweeps) continue;
    const SvdResult ref = one_sided_jacobi(inputs[i], *cfg.ordering, opt.batch.jacobi);
    leg.check(result_digest(r) == result_digest(ref),
              "healthy request " + std::to_string(i) + " diverged from sequential solve");
  }
  expect_counter(leg, "shed", leg.stats.shed, wave);
  expect_counter(leg, "expired", leg.stats.expired, wave);
  expect_counter(leg, "solved", leg.stats.solved, wave);
  expect_counter(leg, "failed", leg.stats.failed, 0);
  expect_counter(leg, "rejected", leg.stats.rejected, 0);
  expect_counter(leg, "completed", leg.stats.completed, 2 * wave);
  expect_counter(leg, "stalls_injected", leg.stats.stalls_injected, 1);
  leg.check(leg.stats.latency.count() == leg.stats.completed, "latency count != completed");
  return leg;
}

/// Leg C — repeat offender: the kill budget outlives the quarantine budget,
/// so the victim shard dies, restarts, dies again, gets quarantined, and its
/// work (kill request included) moves to the survivor — which absorbs one
/// more planned death, restarts, and finishes the trace. Every request still
/// completes with a bitwise-clean payload.
LegReport run_quarantine_leg(const ChaosConfig& cfg) {
  LegReport leg;
  leg.name = "quarantine";

  const std::size_t requests = 24;
  ServeOptions opt;
  opt.rows = cfg.rows;
  opt.cols = cfg.cols;
  opt.shards = 2;
  opt.queue_capacity = 64;
  opt.batch.lane_width = 4;
  opt.batch.use_simd = !cfg.scalar;
  opt.supervisor.poll_micros = 200;
  opt.supervisor.quarantine_after = 1;
  ServeFaultPlan& fp = opt.faults;
  fp.enabled = true;
  fp.seed = cfg.seed;
  fp.kill_request = 2;
  fp.kill_repeat = 3;

  Rng rng(cfg.seed + 2);
  std::vector<Matrix> inputs;
  inputs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i)
    inputs.push_back(random_gaussian(cfg.rows, cfg.cols, rng));
  std::vector<SvdResult> results(requests);
  for (auto& r : results) r.sweeps = kSentinelSweeps;

  SvdServer server(*cfg.ordering, opt);
  server.start();
  for (std::size_t i = 0; i < requests; ++i) {
    if (!server.submit(inputs[i], &results[i]))
      leg.fail("submission " + std::to_string(i) + " not accepted");
  }
  server.wait_idle();
  server.stop();
  leg.stats = server.stats();

  for (std::size_t i = 0; i < requests; ++i) {
    const SvdResult& r = results[i];
    leg.check(r.sweeps != kSentinelSweeps, "request " + std::to_string(i) + " LOST");
    if (r.sweeps == kSentinelSweeps) continue;
    const SvdResult ref = one_sided_jacobi(inputs[i], *cfg.ordering, opt.batch.jacobi);
    leg.check(result_digest(r) == result_digest(ref),
              "request " + std::to_string(i) + " diverged from sequential solve");
  }
  expect_counter(leg, "kills", leg.stats.kills, fp.kill_repeat);
  expect_counter(leg, "restarts", leg.stats.restarts, 2);
  expect_counter(leg, "quarantines", leg.stats.quarantines, 1);
  expect_counter(leg, "solved", leg.stats.solved, requests);
  expect_counter(leg, "failed", leg.stats.failed, 0);
  expect_counter(leg, "completed", leg.stats.completed, requests);
  std::uint64_t deaths = 0;
  for (const ShardSnapshot& sh : leg.stats.shards) deaths += sh.deaths;
  expect_counter(leg, "total shard deaths", deaths, fp.kill_repeat);
  leg.check(leg.stats.requeued >= 1, "a killed batch was never requeued");
  return leg;
}

std::string counters_json(const ServeStats& s) {
  std::ostringstream os;
  os << "{\"submitted\": " << s.submitted << ", \"completed\": " << s.completed
     << ", \"solved\": " << s.solved << ", \"expired\": " << s.expired
     << ", \"shed\": " << s.shed << ", \"failed\": " << s.failed
     << ", \"rejected\": " << s.rejected << ", \"requeued\": " << s.requeued
     << ", \"kills\": " << s.kills << ", \"restarts\": " << s.restarts
     << ", \"quarantines\": " << s.quarantines
     << ", \"stalls_injected\": " << s.stalls_injected
     << ", \"stuck_detected\": " << s.stuck_detected << "}";
  return os.str();
}

int run_chaos(const Cli& cli) {
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 12));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols", 8));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 96));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const std::string oname = cli.get("ordering", "round-robin");
  if (rows < cols || cols < 2 || requests < 24) {
    std::cerr << "treesvd_serve --chaos: need rows >= cols >= 2 and requests >= 24\n";
    return 2;
  }
  OrderingPtr ordering;
  try {
    ordering = make_ordering(oname);
  } catch (const std::exception& e) {
    std::cerr << "treesvd_serve: " << e.what() << "\n";
    return 2;
  }
  ChaosConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.requests = requests;
  cfg.seed = seed;
  cfg.scalar = cli.has("scalar");
  cfg.ordering = ordering.get();

  // Each leg runs twice: the pass/fail audits run on the first, and the
  // replay must reproduce the deterministic counter subset bit-for-bit.
  std::vector<LegReport> legs;
  bool replay_identical = true;
  const auto run_replayed = [&](auto&& leg_fn) {
    LegReport first = leg_fn(cfg);
    LegReport second = leg_fn(cfg);
    if (!(ChaosCounters::from(first.stats) == ChaosCounters::from(second.stats))) {
      replay_identical = false;
      first.fail("replay produced different counters: " + counters_json(first.stats) +
                 " vs " + counters_json(second.stats));
    }
    if (!second.ok) first.ok = false;
    legs.push_back(std::move(first));
  };
  run_replayed(run_mixed_leg);
  run_replayed(run_overload_leg);
  run_replayed(run_quarantine_leg);

  bool ok = replay_identical;
  for (const LegReport& leg : legs) ok = ok && leg.ok;

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_serve\",\n  \"mode\": \"chaos\",\n  \"rows\": " << rows
     << ",\n  \"cols\": " << cols << ",\n  \"ordering\": \"" << oname
     << "\",\n  \"requests\": " << requests << ",\n  \"seed\": " << seed
     << ",\n  \"simd\": " << (cfg.scalar ? "false" : "true") << ",\n  \"legs\": [";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegReport& leg = legs[i];
    os << (i != 0 ? "," : "") << "\n    {\"name\": \"" << leg.name
       << "\", \"pass\": " << (leg.ok ? "true" : "false")
       << ", \"errors\": " << leg.errors.size() << ", \"counters\": " << counters_json(leg.stats)
       << "}";
  }
  os << "\n  ],\n  \"replay_identical\": " << (replay_identical ? "true" : "false")
     << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";

  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(path);
    f << os.str();
    if (!f) {
      std::cerr << "treesvd_serve: cannot write " << path << "\n";
      return 2;
    }
    std::cout << (ok ? "chaos pass" : "chaos FAIL") << ": " << legs.size()
              << " legs replayed -> " << path << "\n";
  }
  return ok ? 0 : 1;
}

int run_serve(const Cli& cli) {
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 32));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols", 16));
  const auto shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  const auto lane_width = static_cast<std::size_t>(cli.get_int("lane-width", 8));
  const auto queue_cap = static_cast<std::size_t>(cli.get_int("queue-cap", 64));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 512));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const auto verify = static_cast<std::size_t>(cli.get_int("verify", 32));
  const std::string oname = cli.get("ordering", "round-robin");
  if (rows < cols || cols < 2 || shards < 1 || requests < 1) {
    std::cerr << "treesvd_serve: need rows >= cols >= 2, shards >= 1, requests >= 1\n";
    return 2;
  }

  OrderingPtr ordering;
  try {
    ordering = make_ordering(oname);
  } catch (const std::exception& e) {
    std::cerr << "treesvd_serve: " << e.what() << "\n";
    return 2;
  }

  ServeOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.shards = shards;
  opt.queue_capacity = queue_cap;
  opt.batch.lane_width = lane_width;
  opt.batch.use_simd = !cli.has("scalar");

  // Canned trace: `requests` seeded Gaussian problems, generated up front so
  // the replay measures the server, not the generator.
  Rng rng(seed);
  std::vector<Matrix> inputs;
  inputs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) inputs.push_back(random_gaussian(rows, cols, rng));
  std::vector<SvdResult> results(requests);

  SvdServer server(*ordering, opt);
  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    if (!server.submit(inputs[i], &results[i])) {
      std::cerr << "treesvd_serve: submit rejected at request " << i << "\n";
      return 1;
    }
  }
  server.wait_idle();
  const auto t1 = std::chrono::steady_clock::now();
  server.stop();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  const double qps = elapsed_s > 0.0 ? static_cast<double>(requests) / elapsed_s : 0.0;

  // Verification gate: a deterministic sample of served results must be
  // bitwise the direct sequential solve (the engine's lane contract,
  // end-to-end through queueing and batching).
  bool ok = true;
  const std::size_t nverify = std::min(verify, requests);
  const std::size_t stride = nverify == 0 ? 1 : std::max<std::size_t>(1, requests / nverify);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < requests && verified < nverify; i += stride, ++verified) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ordering, opt.batch.jacobi);
    if (result_digest(results[i]) != result_digest(ref)) {
      std::cerr << "treesvd_serve: VERIFY FAIL request " << i
                << " diverged from sequential solve\n";
      ok = false;
    }
  }

  const ServeStats stats = server.stats();
  if (stats.completed != requests || stats.latency.count() != requests) {
    std::cerr << "treesvd_serve: accounting mismatch: completed=" << stats.completed
              << " latency_count=" << stats.latency.count() << " requests=" << requests << "\n";
    ok = false;
  }
  if (stats.solved != requests || stats.expired != 0 || stats.failed != 0) {
    std::cerr << "treesvd_serve: fault-free run saw faults: solved=" << stats.solved
              << " expired=" << stats.expired << " failed=" << stats.failed << "\n";
    ok = false;
  }
  if (stats.latency.p50_ns() > stats.latency.p99_ns()) {
    std::cerr << "treesvd_serve: histogram insane: p50 > p99\n";
    ok = false;
  }
  if (qps <= 0.0) {
    std::cerr << "treesvd_serve: nonpositive throughput\n";
    ok = false;
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_serve\",\n  \"rows\": " << rows << ",\n  \"cols\": " << cols
     << ",\n  \"ordering\": \"" << oname << "\",\n  \"shards\": " << shards
     << ",\n  \"lane_width\": " << lane_width << ",\n  \"queue_capacity\": " << queue_cap
     << ",\n  \"simd\": " << (opt.batch.use_simd ? "true" : "false")
     << ",\n  \"requests\": " << requests << ",\n  \"seed\": " << seed
     << ",\n  \"elapsed_s\": " << elapsed_s << ",\n  \"qps\": " << qps
     << ",\n  \"batches\": " << stats.batches << ",\n  \"mean_batch_fill\": "
     << (stats.batches != 0
             ? static_cast<double>(stats.batched_lanes) / static_cast<double>(stats.batches)
             : 0.0)
     << ",\n  \"counters\": " << counters_json(stats)
     << ",\n  \"verified\": " << verified << ",\n  \"pass\": " << (ok ? "true" : "false")
     << ",\n  \"latency\": " << histogram_json(stats.latency) << "\n}\n";

  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(path);
    f << os.str();
    if (!f) {
      std::cerr << "treesvd_serve: cannot write " << path << "\n";
      return 2;
    }
    std::cout << (ok ? "pass" : "FAIL") << ": " << requests << " requests, qps=" << qps
              << ", p50=" << stats.latency.p50_ns() << "ns, p99=" << stats.latency.p99_ns()
              << "ns -> " << path << "\n";
  }
  return ok ? 0 : 1;
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_serve [--rows=32] [--cols=16] [--ordering=round-robin]\n"
                 "                     [--shards=2] [--lane-width=8] [--queue-cap=64]\n"
                 "                     [--requests=512] [--seed=2026] [--verify=32]\n"
                 "                     [--scalar] [--json=PATH]\n"
                 "       treesvd_serve --chaos [--rows=12] [--cols=8]\n"
                 "                     [--ordering=round-robin] [--requests=96]\n"
                 "                     [--seed=2026] [--scalar] [--json=PATH]\n";
    return 0;
  }
  if (cli.has("chaos")) return run_chaos(cli);
  return run_serve(cli);
}

}  // namespace
}  // namespace treesvd::serve_tool

int main(int argc, char** argv) { return treesvd::serve_tool::main(argc, argv); }
