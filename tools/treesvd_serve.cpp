// treesvd_serve — many-SVD serving front-end over the batched engine.
//
// Boots an SvdServer (svd/serve.hpp: thread-per-shard, bounded MPSC
// submission queues with backpressure, preallocated SoA arena slabs), replays
// a seeded synthetic request trace against it, verifies a sample of served
// results bitwise against direct sequential solves, and dumps the latency
// histogram and throughput counters as JSON.
//
// Exit status is the contract: 0 when every verified result matches the
// sequential engine bit-for-bit and the histogram is sane (count == requests,
// p50 <= p99, nonzero QPS); 1 on any violation; 2 on usage error.
//
// Usage:
//   treesvd_serve [--rows=32] [--cols=16] [--ordering=round-robin]
//                 [--shards=2] [--lane-width=8] [--queue-cap=64]
//                 [--requests=512] [--seed=2026] [--verify=32]
//                 [--scalar] [--json=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/serve.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace treesvd::serve_tool {
namespace {

std::string histogram_json(const LatencyHistogram& h) {
  std::ostringstream os;
  os << "{\"count\": " << h.count() << ", \"p50_ns\": " << h.p50_ns()
     << ", \"p99_ns\": " << h.p99_ns() << ", \"max_ns\": " << h.max_ns()
     << ", \"log2_buckets\": [";
  // Trailing zero buckets are elided; what remains is the occupied prefix.
  std::size_t last = 0;
  for (std::size_t k = 0; k < LatencyHistogram::kBuckets; ++k)
    if (h.buckets()[k] != 0) last = k + 1;
  for (std::size_t k = 0; k < last; ++k) os << (k != 0 ? "," : "") << h.buckets()[k];
  os << "]}";
  return os.str();
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_serve [--rows=32] [--cols=16] [--ordering=round-robin]\n"
                 "                     [--shards=2] [--lane-width=8] [--queue-cap=64]\n"
                 "                     [--requests=512] [--seed=2026] [--verify=32]\n"
                 "                     [--scalar] [--json=PATH]\n";
    return 0;
  }
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 32));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols", 16));
  const auto shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  const auto lane_width = static_cast<std::size_t>(cli.get_int("lane-width", 8));
  const auto queue_cap = static_cast<std::size_t>(cli.get_int("queue-cap", 64));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 512));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const auto verify = static_cast<std::size_t>(cli.get_int("verify", 32));
  const std::string oname = cli.get("ordering", "round-robin");
  if (rows < cols || cols < 2 || shards < 1 || requests < 1) {
    std::cerr << "treesvd_serve: need rows >= cols >= 2, shards >= 1, requests >= 1\n";
    return 2;
  }

  OrderingPtr ordering;
  try {
    ordering = make_ordering(oname);
  } catch (const std::exception& e) {
    std::cerr << "treesvd_serve: " << e.what() << "\n";
    return 2;
  }

  ServeOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.shards = shards;
  opt.queue_capacity = queue_cap;
  opt.batch.lane_width = lane_width;
  opt.batch.use_simd = !cli.has("scalar");

  // Canned trace: `requests` seeded Gaussian problems, generated up front so
  // the replay measures the server, not the generator.
  Rng rng(seed);
  std::vector<Matrix> inputs;
  inputs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) inputs.push_back(random_gaussian(rows, cols, rng));
  std::vector<SvdResult> results(requests);

  SvdServer server(*ordering, opt);
  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    if (!server.submit(inputs[i], &results[i])) {
      std::cerr << "treesvd_serve: submit rejected at request " << i << "\n";
      return 1;
    }
  }
  server.wait_idle();
  const auto t1 = std::chrono::steady_clock::now();
  server.stop();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  const double qps = elapsed_s > 0.0 ? static_cast<double>(requests) / elapsed_s : 0.0;

  // Verification gate: a deterministic sample of served results must be
  // bitwise the direct sequential solve (the engine's lane contract,
  // end-to-end through queueing and batching).
  bool ok = true;
  const std::size_t nverify = std::min(verify, requests);
  const std::size_t stride = nverify == 0 ? 1 : std::max<std::size_t>(1, requests / nverify);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < requests && verified < nverify; i += stride, ++verified) {
    const SvdResult ref = one_sided_jacobi(inputs[i], *ordering, opt.batch.jacobi);
    if (result_digest(results[i]) != result_digest(ref)) {
      std::cerr << "treesvd_serve: VERIFY FAIL request " << i
                << " diverged from sequential solve\n";
      ok = false;
    }
  }

  const ServeStats stats = server.stats();
  if (stats.completed != requests || stats.latency.count() != requests) {
    std::cerr << "treesvd_serve: accounting mismatch: completed=" << stats.completed
              << " latency_count=" << stats.latency.count() << " requests=" << requests << "\n";
    ok = false;
  }
  if (stats.latency.p50_ns() > stats.latency.p99_ns()) {
    std::cerr << "treesvd_serve: histogram insane: p50 > p99\n";
    ok = false;
  }
  if (qps <= 0.0) {
    std::cerr << "treesvd_serve: nonpositive throughput\n";
    ok = false;
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_serve\",\n  \"rows\": " << rows << ",\n  \"cols\": " << cols
     << ",\n  \"ordering\": \"" << oname << "\",\n  \"shards\": " << shards
     << ",\n  \"lane_width\": " << lane_width << ",\n  \"queue_capacity\": " << queue_cap
     << ",\n  \"simd\": " << (opt.batch.use_simd ? "true" : "false")
     << ",\n  \"requests\": " << requests << ",\n  \"seed\": " << seed
     << ",\n  \"elapsed_s\": " << elapsed_s << ",\n  \"qps\": " << qps
     << ",\n  \"batches\": " << stats.batches << ",\n  \"mean_batch_fill\": "
     << (stats.batches != 0
             ? static_cast<double>(stats.batched_lanes) / static_cast<double>(stats.batches)
             : 0.0)
     << ",\n  \"verified\": " << verified << ",\n  \"pass\": " << (ok ? "true" : "false")
     << ",\n  \"latency\": " << histogram_json(stats.latency) << "\n}\n";

  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(path);
    f << os.str();
    if (!f) {
      std::cerr << "treesvd_serve: cannot write " << path << "\n";
      return 2;
    }
    std::cout << (ok ? "pass" : "FAIL") << ": " << requests << " requests, qps=" << qps
              << ", p50=" << stats.latency.p50_ns() << "ns, p99=" << stats.latency.p99_ns()
              << "ns -> " << path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::serve_tool

int main(int argc, char** argv) { return treesvd::serve_tool::main(argc, argv); }
