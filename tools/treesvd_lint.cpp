// treesvd_lint — offline linter for parallel Jacobi orderings.
//
// Enumerates every ordering in the registry across a range of n and checks
// the paper's invariants (core/validate.hpp) ahead of any runtime use:
//   pair-coverage        every unordered index pair rotated exactly once
//   step-disjoint        within each step the active pairs are pairwise
//                        disjoint (no index rotated by two leaves at once —
//                        the static form of a data race on a column)
//   sequence-validity    4 consecutive sweeps chained through final layouts
//   steps-contract       Sweep::steps() matches Ordering::steps(n)
//   rotation-count       n(n-1)/2 active rotations per sweep
//   move-consistency     declared ColumnMoves reproduce the layout sequence
//   restoration          index order restored after at most two sweeps
//   comm-levels          level histogram bounded by the tree height and
//                        consistent with the per-index move accounting
//   one-way-ring         new-ring traffic moves one hop in one direction
//   rr-equivalence       ring orderings are round-robin under relabelling
//   inner-recursion      reused recursively as the block driver's *inner*
//                        ordering (svd/block_jacobi.hpp inner_ordering) the
//                        schedule stays pair-disjoint at the inner panel
//                        widths 4/8/16 across chained sweeps
//
// Output is machine-readable JSON (stdout, or --json=PATH); the exit status
// is the contract: 0 means every check passed, 1 means at least one
// violation, 2 means usage error. --corrupt=<kind> wraps each ordering in a
// deliberately broken adapter (the linter must then exit 1), and --self-test
// runs both directions in-process.
//
// Usage:
//   treesvd_lint [--min-n=4] [--max-n=64] [--orderings=a,b,...]
//                [--sweeps=4] [--json=PATH] [--corrupt=KIND] [--self-test]
//   KIND: duplicate-pair | no-restore | reversed-traffic | overlapping-pair

#include <algorithm>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/ordering.hpp"
#include "core/registry.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"
#include "util/cli.hpp"

namespace treesvd::lint {
namespace {

// ---------------------------------------------------------------------------
// Corruption adapters: orderings broken in exactly the ways the linter must
// detect. Used by --corrupt and the self-test.

enum class Corruption {
  kNone,
  kDuplicatePair,
  kNoRestore,
  kReversedTraffic,
  kOverlappingPair
};

std::optional<Corruption> parse_corruption(const std::string& kind) {
  if (kind.empty()) return Corruption::kNone;
  if (kind == "duplicate-pair") return Corruption::kDuplicatePair;
  if (kind == "no-restore") return Corruption::kNoRestore;
  if (kind == "reversed-traffic") return Corruption::kReversedTraffic;
  if (kind == "overlapping-pair") return Corruption::kOverlappingPair;
  return std::nullopt;
}

/// Wraps an ordering and tampers with its canonical layout sequence.
class CorruptedOrdering final : public Ordering {
 public:
  CorruptedOrdering(OrderingPtr inner, Corruption kind)
      : inner_(std::move(inner)), kind_(kind) {}

  std::string name() const override { return inner_->name() + "+corrupt"; }
  bool supports(int n) const override { return inner_->supports(n); }
  int steps(int n) const override { return inner_->steps(n); }

 protected:
  Canonical canonical(int n, int sweep_index) const override {
    Canonical c = detail_canonical(*inner_, n, sweep_index);
    switch (kind_) {
      case Corruption::kNone:
        break;
      case Corruption::kDuplicatePair: {
        // Swapping two occupants of one mid-sweep layout repeats one pair and
        // omits another — breaks pair coverage without touching the shape.
        if (c.layouts.size() > 2 && n >= 4) {
          auto& mid = c.layouts[c.layouts.size() / 2];
          std::swap(mid[0], mid[2]);
        }
        break;
      }
      case Corruption::kNoRestore: {
        // Tampering with the final layout leaves the sweep itself valid but
        // derails the sweep chain: restoration and sequence validity fail.
        auto& fin = c.layouts.back();
        std::swap(fin.front(), fin.back());
        break;
      }
      case Corruption::kReversedTraffic: {
        // Rotating one intermediate layout the wrong way around the ring
        // sends columns clockwise — the one-way-traffic property breaks.
        if (c.layouts.size() > 2) {
          auto& mid = c.layouts[c.layouts.size() / 2];
          std::rotate(mid.begin(), mid.begin() + 2, mid.end());
        }
        break;
      }
      case Corruption::kOverlappingPair: {
        // Duplicating one occupant into another leaf's slot makes two leaves
        // rotate the same column in the same step. The layout stops being a
        // permutation, so Sweep's constructor rejects it and the linter
        // records the throw as a no-exception violation; the disjointness
        // checker itself is probed on raw StepPairs views in the self-test.
        if (c.layouts.size() > 2 && n >= 4) {
          auto& mid = c.layouts[c.layouts.size() / 2];
          mid[2] = mid[0];
        }
        break;
      }
    }
    return c;
  }

 private:
  // Ordering::canonical is protected; a sibling class may access it through a
  // helper of its own type.
  struct Access : Ordering {
    using Ordering::canonical;
  };
  static Canonical detail_canonical(const Ordering& o, int n, int sweep_index) {
    return (o.*(&Access::canonical))(n, sweep_index);
  }

  OrderingPtr inner_;
  Corruption kind_;
};

// ---------------------------------------------------------------------------
// Checks. Each returns an empty string on success, a diagnostic on failure.

struct CheckResult {
  std::string name;
  bool pass = false;
  std::string detail;  ///< diagnostic on failure, empty on success
};

std::string check_pair_coverage(const Sweep& s) {
  const SweepValidation v = validate_sweep(s);
  return v.valid ? std::string{} : v.error;
}

/// Disjointness of one step's concurrent pairs, on the raw StepPairs view.
/// Factored out of check_step_disjointness so the self-test can exercise the
/// checker on a hand-built overlapping view: a full Sweep cannot carry the
/// violation, because its constructor already rejects non-permutation
/// layouts (the corruption adapter's overlapping-pair tamper throws there).
std::string check_pairs_disjoint(const StepPairs& pairs, int n, int t) {
  std::vector<int> uses(static_cast<std::size_t>(n), 0);
  for (int leaf = 0; leaf < pairs.leaves(); ++leaf) {
    if (!pairs.active_at(leaf)) continue;
    const IndexPair p = pairs.at(leaf);
    if (p.even == p.odd)
      return "step " + std::to_string(t) + ": leaf " + std::to_string(leaf) + " pairs index " +
             std::to_string(p.even) + " with itself";
    for (const int idx : {p.even, p.odd}) {
      if (idx < 0 || idx >= n)
        return "step " + std::to_string(t) + ": leaf " + std::to_string(leaf) +
               " rotates out-of-range index " + std::to_string(idx);
      if (++uses[static_cast<std::size_t>(idx)] > 1)
        return "step " + std::to_string(t) + ": index " + std::to_string(idx) +
               " appears in more than one concurrent pair";
    }
  }
  return {};
}

std::string check_step_disjointness(const Sweep& s, int n) {
  // A step's active pairs execute concurrently (one rotation per leaf); if
  // any column index appeared in two pairs — or twice within one pair — two
  // processors would read and write the same column in the same step. This
  // is the schedule-level statement of data-race freedom: the dynamic
  // detector (treesvd_race) can then trust that same-step rotations touch
  // disjoint columns.
  for (int t = 0; t < s.steps(); ++t) {
    std::string detail = check_pairs_disjoint(s.step_pairs(t), n, t);
    if (!detail.empty()) return detail;
  }
  return {};
}

std::string check_sequence(const Ordering& ord, int n, int sweeps) {
  const SweepValidation v = validate_sweep_sequence(ord, n, sweeps);
  return v.valid ? std::string{} : v.error;
}

std::string check_steps_contract(const Ordering& ord, const Sweep& s, int n) {
  if (s.steps() == ord.steps(n)) return {};
  return "sweep has " + std::to_string(s.steps()) + " steps, contract says " +
         std::to_string(ord.steps(n));
}

std::string check_rotation_count(const Sweep& s, int n) {
  const auto want = static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
  if (s.rotation_count() == want) return {};
  return "rotation count " + std::to_string(s.rotation_count()) + ", expected " +
         std::to_string(want);
}

std::string check_move_consistency(const Sweep& s) {
  for (int t = 0; t < s.steps(); ++t) {
    const auto from = s.layout(t);
    const auto to = s.layout(t + 1);
    std::vector<int> applied(from.begin(), from.end());
    for (const ColumnMove& mv : s.moves(t)) {
      if (from[static_cast<std::size_t>(mv.from_slot)] != mv.index)
        return "step " + std::to_string(t) + ": move of index " + std::to_string(mv.index) +
               " does not originate from slot " + std::to_string(mv.from_slot);
      applied[static_cast<std::size_t>(mv.to_slot)] = mv.index;
    }
    if (!std::equal(applied.begin(), applied.end(), to.begin(), to.end()))
      return "step " + std::to_string(t) + ": applying declared moves does not yield next layout";
  }
  return {};
}

std::string check_restoration(const Ordering& ord, int n) {
  // Every ordering in the paper restores index order after at most two
  // sweeps (fat-tree after one; rings, odd-even and LLB after two).
  std::vector<int> layout(static_cast<std::size_t>(n));
  std::iota(layout.begin(), layout.end(), 0);
  for (int k = 0; k < 2; ++k) {
    const Sweep s = ord.sweep_from(layout, k);
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  std::vector<int> ident(static_cast<std::size_t>(n));
  std::iota(ident.begin(), ident.end(), 0);
  if (layout == ident) return {};
  return "index order not restored after two sweeps";
}

std::string check_comm_levels(const Sweep& s) {
  // The histogram must fit inside the tree (no transfer can cross more than
  // ceil(log2(leaves)) levels) and agree with the per-index move accounting:
  // both derive from the same layout deltas, so a mismatch means the sweep's
  // move declarations are internally inconsistent.
  const auto hist = level_histogram(s);
  int height = 0;
  while ((1 << height) < s.leaves()) ++height;
  if (hist.size() != static_cast<std::size_t>(height) + 1)
    return "level histogram has " + std::to_string(hist.size()) + " buckets, tree height is " +
           std::to_string(height);
  const auto per_index = moves_per_index(s);
  const std::size_t inter_leaf =
      std::accumulate(hist.begin() + 1, hist.end(), static_cast<std::size_t>(0));
  const std::size_t from_indices =
      std::accumulate(per_index.begin(), per_index.end(), static_cast<std::size_t>(0));
  if (inter_leaf != from_indices)
    return "histogram counts " + std::to_string(inter_leaf) + " inter-leaf transfers, per-index " +
           "accounting counts " + std::to_string(from_indices);
  return {};
}

std::string check_one_way_ring(const Sweep& s) {
  if (unidirectional_ring_moves(s)) return {};
  return "a column moved against the ring direction (or by more than one hop)";
}

std::string check_inner_recursion(const Ordering& ord) {
  // Level-2 recursion contract (svd/block_jacobi.hpp): the block driver can
  // reuse any registered ordering *inside* an encounter, over a met pair's
  // 2b local columns, chaining the local layout across the encounter's inner
  // sweeps exactly as the outer driver chains block layouts. This replays
  // that usage at the supported inner panel widths (2b in {4, 8, 16}, two
  // chained sweeps via sweep_from) and checks what the inner engines assume:
  // every inner step's concurrent pairs are disjoint, and each inner sweep
  // still rotates every local pair exactly once.
  for (const int w : {4, 8, 16}) {
    if (!ord.supports(w)) continue;
    std::vector<int> layout(static_cast<std::size_t>(w));
    std::iota(layout.begin(), layout.end(), 0);
    for (int k = 0; k < 2; ++k) {
      const Sweep s = ord.sweep_from(layout, k);
      for (int t = 0; t < s.steps(); ++t) {
        std::string detail = check_pairs_disjoint(s.step_pairs(t), w, t);
        if (!detail.empty())
          return "inner width " + std::to_string(w) + ", sweep " + std::to_string(k) + ": " +
                 detail;
      }
      const auto want = static_cast<std::size_t>(w) * static_cast<std::size_t>(w - 1) / 2;
      if (s.rotation_count() != want)
        return "inner width " + std::to_string(w) + ", sweep " + std::to_string(k) +
               ": rotation count " + std::to_string(s.rotation_count()) + ", expected " +
               std::to_string(want);
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
    }
  }
  return {};
}

std::string check_rr_equivalence(const Sweep& s, int n) {
  const Sweep rr = RoundRobinOrdering().sweep(n);
  if (find_equivalence_relabelling(s, rr).has_value()) return {};
  return "no relabelling maps this sweep onto round-robin";
}

// ---------------------------------------------------------------------------

struct CaseReport {
  std::string ordering;
  int n = 0;
  std::vector<CheckResult> checks;
  bool pass = true;
};

CaseReport run_case(const std::string& display_name, const Ordering& ord, int n, int sweeps,
                    bool ring_checks) {
  CaseReport report;
  report.ordering = display_name;
  report.n = n;
  const auto add = [&report](const std::string& name, std::string detail) {
    CheckResult r;
    r.name = name;
    r.pass = detail.empty();
    r.detail = std::move(detail);
    report.pass = report.pass && r.pass;
    report.checks.push_back(std::move(r));
  };

  const Sweep s = ord.sweep(n);
  add("pair-coverage", check_pair_coverage(s));
  add("step-disjoint", check_step_disjointness(s, n));
  add("sequence-validity", check_sequence(ord, n, sweeps));
  add("steps-contract", check_steps_contract(ord, s, n));
  add("rotation-count", check_rotation_count(s, n));
  add("move-consistency", check_move_consistency(s));
  add("restoration", check_restoration(ord, n));
  add("comm-levels", check_comm_levels(s));
  add("inner-recursion", check_inner_recursion(ord));
  if (ring_checks) {
    add("one-way-ring", check_one_way_ring(s));
    add("rr-equivalence", check_rr_equivalence(s, n));
  }
  return report;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string to_json(const std::vector<CaseReport>& reports, int min_n, int max_n,
                    const std::string& corruption, bool pass) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_lint\",\n  \"version\": 1,\n";
  os << "  \"min_n\": " << min_n << ",\n  \"max_n\": " << max_n << ",\n";
  os << "  \"corruption\": \"" << json_escape(corruption) << "\",\n";
  std::size_t violations = 0;
  for (const CaseReport& r : reports)
    for (const CheckResult& c : r.checks) violations += c.pass ? 0 : 1;
  os << "  \"violations\": " << violations << ",\n";
  os << "  \"pass\": " << (pass ? "true" : "false") << ",\n  \"results\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CaseReport& r = reports[i];
    os << (i ? "," : "") << "\n    {\"ordering\": \"" << json_escape(r.ordering)
       << "\", \"n\": " << r.n << ", \"pass\": " << (r.pass ? "true" : "false")
       << ", \"checks\": [";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const CheckResult& c = r.checks[j];
      os << (j ? ", " : "") << "{\"name\": \"" << c.name << "\", \"pass\": "
         << (c.pass ? "true" : "false");
      if (!c.pass) os << ", \"detail\": \"" << json_escape(c.detail) << "\"";
      os << "}";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// The one-way-traffic and round-robin-equivalence theorems apply to the
/// ring orderings; equivalence additionally holds for modified-ring.
bool has_one_way_traffic(const std::string& name) { return name == "new-ring"; }
bool is_rr_equivalent(const std::string& name) {
  return name == "new-ring" || name == "modified-ring";
}

struct RunOutcome {
  std::vector<CaseReport> reports;
  bool pass = true;
};

RunOutcome run_all(const std::vector<std::string>& names, int min_n, int max_n, int sweeps,
                   Corruption corruption) {
  RunOutcome out;
  for (const std::string& name : names) {
    OrderingPtr ord = make_ordering(name);
    std::string display = name;
    if (corruption != Corruption::kNone) {
      ord = std::make_shared<CorruptedOrdering>(std::move(ord), corruption);
      display = ord->name();
    }
    for (int n = min_n; n <= max_n; ++n) {
      if (!ord->supports(n)) continue;
      // The ring theorems are about the canonical (uncorrupted) schedule;
      // corrupted runs still exercise them so the linter can flag the break.
      const bool ring = has_one_way_traffic(name);
      CaseReport r;
      try {
        r = run_case(display, *ord, n, sweeps, ring);
        if (!ring && is_rr_equivalent(name)) {
          CheckResult c;
          c.name = "rr-equivalence";
          c.detail = check_rr_equivalence(ord->sweep(n), n);
          c.pass = c.detail.empty();
          r.pass = r.pass && c.pass;
          r.checks.push_back(std::move(c));
        }
      } catch (const std::exception& e) {
        // A throwing ordering is itself a violation, not a linter crash.
        r.ordering = display;
        r.n = n;
        r.pass = false;
        r.checks.push_back({"no-exception", false, e.what()});
      }
      out.pass = out.pass && r.pass;
      out.reports.push_back(std::move(r));
    }
  }
  return out;
}

int self_test() {
  // Direction 1: the clean registry must pass.
  const auto names = ordering_names({2, 4});
  const RunOutcome clean = run_all(names, 4, 16, 3, Corruption::kNone);
  if (!clean.pass) {
    std::cerr << "self-test FAILED: clean registry reported violations\n";
    return 1;
  }
  // Direction 2: every corruption kind must be caught on every ordering it
  // structurally applies to (all sweeps have >= 3 layouts for n >= 4).
  const Corruption kinds[] = {Corruption::kDuplicatePair, Corruption::kNoRestore,
                              Corruption::kReversedTraffic, Corruption::kOverlappingPair};
  const char* kind_names[] = {"duplicate-pair", "no-restore", "reversed-traffic",
                              "overlapping-pair"};
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    const RunOutcome corrupted = run_all({"fat-tree", "new-ring", "round-robin"}, 8, 8, 3,
                                         kinds[k]);
    if (corrupted.pass) {
      std::cerr << "self-test FAILED: corruption '" << kind_names[k]
                << "' slipped past every check\n";
      return 1;
    }
  }
  // Direction 3: the disjointness checker itself must flag an overlapping
  // step, a self-pair, and an out-of-range index on a raw StepPairs view
  // (a full Sweep cannot carry these — its constructor rejects them — so
  // the checker is probed directly; see check_pairs_disjoint).
  const std::vector<int> overlapping = {0, 1, 0, 3, 4, 5, 6, 7};
  const std::vector<int> self_pair = {0, 0, 2, 3, 4, 5, 6, 7};
  const std::vector<int> out_of_range = {0, 1, 2, 3, 4, 5, 6, 9};
  for (const auto* bad : {&overlapping, &self_pair, &out_of_range}) {
    const StepPairs view(std::span<const int>(*bad), {});
    if (check_pairs_disjoint(view, 8, 0).empty()) {
      std::cerr << "self-test FAILED: corrupt step layout not caught by the step-disjoint "
                   "check\n";
      return 1;
    }
  }
  const std::vector<int> clean_step = {0, 1, 2, 3, 4, 5, 6, 7};
  if (!check_pairs_disjoint(StepPairs(std::span<const int>(clean_step), {}), 8, 0).empty()) {
    std::cerr << "self-test FAILED: step-disjoint check flagged a clean step\n";
    return 1;
  }
  std::cout << "self-test passed: clean registry accepted, all corruption kinds detected\n";
  return 0;
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_lint [--min-n=4] [--max-n=64] [--orderings=a,b,...]\n"
                 "                    [--sweeps=4] [--json=PATH] [--corrupt=KIND] [--self-test]\n"
                 "KIND: duplicate-pair | no-restore | reversed-traffic | overlapping-pair\n";
    return 0;
  }
  if (cli.has("self-test")) return self_test();

  const int min_n = static_cast<int>(cli.get_int("min-n", 4));
  const int max_n = static_cast<int>(cli.get_int("max-n", 64));
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 4));
  if (min_n < 4 || max_n < min_n) {
    std::cerr << "treesvd_lint: invalid n range [" << min_n << ", " << max_n << "]\n";
    return 2;
  }
  const auto corruption = parse_corruption(cli.get("corrupt", ""));
  if (!corruption) {
    std::cerr << "treesvd_lint: unknown corruption kind '" << cli.get("corrupt", "") << "'\n";
    return 2;
  }

  std::vector<std::string> names;
  if (cli.has("orderings")) {
    names = split_csv(cli.get("orderings", ""));
    for (const std::string& name : names) {
      try {
        make_ordering(name);
      } catch (const std::invalid_argument&) {
        std::cerr << "treesvd_lint: unknown ordering '" << name << "' (known: ";
        const auto known = ordering_names({2, 4, 8});
        for (std::size_t i = 0; i < known.size(); ++i) std::cerr << (i ? ", " : "") << known[i];
        std::cerr << ")\n";
        return 2;
      }
    }
  } else {
    names = ordering_names({2, 4, 8});
  }

  const RunOutcome outcome = run_all(names, min_n, max_n, sweeps, *corruption);
  const std::string json =
      to_json(outcome.reports, min_n, max_n, cli.get("corrupt", ""), outcome.pass);
  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "treesvd_lint: cannot write " << path << "\n";
      return 2;
    }
    f << json;
    std::cout << (outcome.pass ? "PASS" : "FAIL") << ": " << outcome.reports.size()
              << " ordering/size cases, report written to " << path << "\n";
  }
  if (!outcome.pass) {
    for (const CaseReport& r : outcome.reports)
      for (const CheckResult& c : r.checks)
        if (!c.pass)
          std::cerr << "violation: " << r.ordering << " n=" << r.n << " " << c.name << ": "
                    << c.detail << "\n";
  }
  return outcome.pass ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::lint

int main(int argc, char** argv) { return treesvd::lint::main(argc, argv); }
