// treesvd_torture — numerical-robustness acceptance harness.
//
// Runs every registered SVD engine against every registry ordering on the
// torture-input family (linalg/generators.hpp: graded condition numbers up
// to 1e12, entry magnitudes near 1e+-150, denormal-laced perturbations,
// exact zero and duplicate columns, Hilbert). The contract, per run:
//
//  * the engine must not throw and every reported sigma must be finite;
//  * a converged run reports SvdStatus::kConverged; a non-converged run
//    reports a diagnosed status (kMaxSweeps / kStalled) together with a
//    best-effort factorization and populated quality diagnostics;
//  * on cases with known construction sigma, the scaled error
//    max_k |sigma_k - ref_k| / ref_max must be <= --tol (default 1e-10);
//  * on the well-scaled case, a forced-equilibration run (kAlways) must
//    reproduce the unequilibrated (kOff) run bit-for-bit: same sigma bits
//    and the same sweep count — the scaling is exact powers of two.
//
// The per-run results are emitted as machine-readable JSON (stdout, or
// --json=PATH); the exit status is the contract: 0 means every run honoured
// it, 1 means at least one violation, 2 means usage error. CI archives the
// JSON so quality metrics are diffable across commits.
//
// Usage:
//   treesvd_torture [--n=8] [--rows=12] [--seed=2026] [--tol=1e-10]
//                   [--max-sweeps=60] [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <functional>
#include <limits>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "network/topology.hpp"
#include "sim/distributed.hpp"
#include "svd/block_jacobi.hpp"
#include "svd/jacobi.hpp"
#include "svd/kogbetliantz.hpp"
#include "svd/preconditioned.hpp"
#include "svd/spmd.hpp"
#include "util/cli.hpp"

namespace treesvd::torture {
namespace {

/// What the harness needs to know about one engine run, whatever the
/// engine's native result type.
struct Outcome {
  std::vector<double> sigma;
  bool converged = false;
  SvdStatus status = SvdStatus::kMaxSweeps;
  SvdDiagnostics diagnostics;
  int sweeps = 0;
  /// SvdResult engines compute the heavy quality metrics for non-converged
  /// runs; KogbetliantzResult reports status/scale diagnostics only.
  bool has_quality = true;
};

Outcome from_svd(const SvdResult& r) {
  Outcome o;
  o.sigma = r.sigma;
  o.converged = r.converged;
  o.status = r.status;
  o.diagnostics = r.diagnostics;
  o.sweeps = r.sweeps;
  return o;
}

struct Engine {
  std::string name;
  bool square_only = false;        ///< kogbetliantz: two-sided needs m == n
  bool needs_exact_width = false;  ///< distributed: ordering.supports(n), no padding
  /// Units the ordering schedules for this engine: 1 = columns, otherwise
  /// the block width (the block driver schedules ceil(n/b) blocks).
  int unit_width = 1;
  Outcome (*run)(const Matrix&, const Ordering&, EquilibrateMode, int max_sweeps);
};

/// Mirrors the drivers' padding search: can `ord` schedule `units` work
/// units, padded up to the drivers' shared 2*units+4 limit?
bool schedulable(const Ordering& ord, int units) {
  for (int w = units; w <= 2 * units + 4; ++w)
    if (ord.supports(w)) return true;
  return false;
}

JacobiOptions jacobi_options(EquilibrateMode mode, int max_sweeps) {
  JacobiOptions opt;
  opt.equilibrate = mode;
  opt.max_sweeps = max_sweeps;
  return opt;
}

const std::vector<Engine>& engines() {
  static const std::vector<Engine> kEngines = {
      {"serial", false, false, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         return from_svd(one_sided_jacobi(a, ord, jacobi_options(mode, sweeps)));
       }},
      {"threaded", false, false, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         return from_svd(one_sided_jacobi_threaded(a, ord, jacobi_options(mode, sweeps)));
       }},
      {"cyclic", false, false, 1,
       [](const Matrix& a, const Ordering&, EquilibrateMode mode, int sweeps) {
         return from_svd(cyclic_jacobi(a, jacobi_options(mode, sweeps)));
       }},
      {"block-gram", false, false, 2,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         BlockJacobiOptions opt;
         opt.inner_mode = InnerMode::kGram;
         opt.block_width = 2;
         opt.equilibrate = mode;
         opt.max_outer_sweeps = sweeps;
         return from_svd(block_one_sided_jacobi(a, ord, opt));
       }},
      {"block-elementwise", false, false, 2,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         BlockJacobiOptions opt;
         opt.inner_mode = InnerMode::kElementwise;
         opt.block_width = 2;
         opt.equilibrate = mode;
         opt.max_outer_sweeps = sweeps;
         return from_svd(block_one_sided_jacobi(a, ord, opt));
       }},
      {"preconditioned", false, false, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         return from_svd(qr_preconditioned_jacobi(a, ord, jacobi_options(mode, sweeps)));
       }},
      {"spmd", false, false, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         return from_svd(spmd_jacobi(a, ord, jacobi_options(mode, sweeps)));
       }},
      {"distributed", false, true, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         const FatTreeTopology topo(static_cast<int>(a.cols()) / 2, CapacityProfile::kPerfect);
         return from_svd(distributed_jacobi(a, ord, topo, jacobi_options(mode, sweeps)).svd);
       }},
      {"kogbetliantz", true, false, 1,
       [](const Matrix& a, const Ordering& ord, EquilibrateMode mode, int sweeps) {
         KogbetliantzOptions opt;
         opt.equilibrate = mode;
         opt.max_sweeps = sweeps;
         const KogbetliantzResult r = kogbetliantz_svd(a, ord, opt);
         Outcome o;
         o.sigma = r.sigma;
         o.converged = r.converged;
         o.status = r.status;
         o.diagnostics = r.diagnostics;
         o.sweeps = r.sweeps;
         o.has_quality = false;
         return o;
       }},
  };
  return kEngines;
}

/// max_k |sigma_k - ref_k| / ref_max over descending-sorted copies; ref must
/// be non-empty with ref_max > 0.
double scaled_sigma_error(std::vector<double> got, std::vector<double> ref) {
  std::sort(got.begin(), got.end(), std::greater<>());
  std::sort(ref.begin(), ref.end(), std::greater<>());
  if (got.size() != ref.size()) return std::numeric_limits<double>::infinity();
  const double smax = ref.front();
  double err = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k)
    err = std::max(err, std::fabs(got[k] - ref[k]) / smax);
  return err;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct RunReport {
  std::string kase;
  std::string engine;
  std::string ordering;
  bool ok = false;
  std::string detail;  ///< first violation or exception text; empty on success
  std::string status;
  bool converged = false;
  int sweeps = 0;
  double sigma_error = -1.0;      ///< scaled error vs known sigma; -1 = unknown sigma
  double scaled_residual = -1.0;  ///< from diagnostics when computed
  bool equilibrated = false;
};

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_torture [--n=8] [--rows=12] [--seed=2026] [--tol=1e-10]\n"
                 "                       [--max-sweeps=60] [--json=PATH]\n";
    return 0;
  }

  const int n = static_cast<int>(cli.get_int("n", 8));
  const int rows = static_cast<int>(cli.get_int("rows", n + 4));
  const double tol = cli.get_double("tol", 1e-10);
  const int max_sweeps = static_cast<int>(cli.get_int("max-sweeps", 60));
  if (n < 4 || n % 2 != 0 || rows < n) {
    std::cerr << "treesvd_torture: need even n >= 4 and rows >= n\n";
    return 2;
  }

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2026)));
  const auto cases =
      torture_suite(static_cast<std::size_t>(rows), static_cast<std::size_t>(n), rng);
  // A second, square family for the two-sided engine (skipping any case the
  // construction leaves non-square).
  Rng rng_sq(static_cast<std::uint64_t>(cli.get_int("seed", 2026)));
  const auto square_cases =
      torture_suite(static_cast<std::size_t>(n), static_cast<std::size_t>(n), rng_sq);

  std::vector<RunReport> reports;
  bool pass = true;
  for (const Engine& eng : engines()) {
    const auto& suite = eng.square_only ? square_cases : cases;
    for (const std::string& oname : ordering_names()) {
      if (eng.name == "cyclic" && oname != "round-robin") continue;  // ordering-free
      const OrderingPtr ordering = make_ordering(oname);
      if (eng.needs_exact_width && !ordering->supports(n)) continue;
      if (!schedulable(*ordering, (n + eng.unit_width - 1) / eng.unit_width)) continue;
      for (const TortureCase& tc : suite) {
        if (eng.square_only && tc.a.rows() != tc.a.cols()) continue;
        RunReport rep;
        rep.kase = tc.name;
        rep.engine = eng.name;
        rep.ordering = oname;
        try {
          const Outcome o = eng.run(tc.a, *ordering, EquilibrateMode::kAuto, max_sweeps);
          rep.status = to_string(o.status);
          rep.converged = o.converged;
          rep.sweeps = o.sweeps;
          rep.scaled_residual = o.diagnostics.scaled_residual;
          rep.equilibrated = o.diagnostics.equilibrated;
          for (const double s : o.sigma)
            if (!std::isfinite(s)) rep.detail = "non-finite sigma";
          if (rep.detail.empty() && o.converged && o.status != SvdStatus::kConverged)
            rep.detail = "converged run not classified kConverged";
          if (rep.detail.empty() && !o.converged && o.status == SvdStatus::kConverged)
            rep.detail = "non-converged run classified kConverged";
          if (rep.detail.empty() && !o.converged && o.has_quality &&
              o.diagnostics.scaled_residual < 0.0)
            rep.detail = "non-converged run missing quality diagnostics";
          if (rep.detail.empty() && !tc.sigma.empty()) {
            rep.sigma_error = scaled_sigma_error(o.sigma, tc.sigma);
            if (!(rep.sigma_error <= tol))
              rep.detail = "sigma error " + std::to_string(rep.sigma_error) +
                           " exceeds tol on known-sigma case";
          }
          // Bitwise equilibration transparency, checked once per engine x
          // ordering on the well-scaled case.
          if (rep.detail.empty() && tc.name == "well-scaled") {
            const Outcome off = eng.run(tc.a, *ordering, EquilibrateMode::kOff, max_sweeps);
            const Outcome always = eng.run(tc.a, *ordering, EquilibrateMode::kAlways, max_sweeps);
            if (off.sweeps != always.sweeps)
              rep.detail = "equilibrated sweep count differs from unequilibrated";
            for (std::size_t k = 0; rep.detail.empty() && k < off.sigma.size(); ++k)
              if (off.sigma[k] != always.sigma[k])
                rep.detail = "equilibrated sigma[" + std::to_string(k) + "] differs bitwise";
          }
        } catch (const std::exception& e) {
          rep.detail = std::string("exception: ") + e.what();
        }
        rep.ok = rep.detail.empty();
        pass = pass && rep.ok;
        reports.push_back(std::move(rep));
      }
    }
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_torture\",\n  \"version\": 1,\n";
  os << "  \"n\": " << n << ",\n  \"rows\": " << rows << ",\n  \"tol\": " << tol << ",\n";
  os << "  \"pass\": " << (pass ? "true" : "false") << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RunReport& r = reports[i];
    os << (i ? "," : "") << "\n    {\"case\": \"" << json_escape(r.kase) << "\", \"engine\": \""
       << json_escape(r.engine) << "\", \"ordering\": \"" << json_escape(r.ordering)
       << "\", \"ok\": " << (r.ok ? "true" : "false") << ", \"status\": \"" << r.status
       << "\", \"converged\": " << (r.converged ? "true" : "false")
       << ", \"sweeps\": " << r.sweeps << ", \"equilibrated\": "
       << (r.equilibrated ? "true" : "false");
    if (r.sigma_error >= 0.0) os << ", \"sigma_error\": " << r.sigma_error;
    if (r.scaled_residual >= 0.0) os << ", \"scaled_residual\": " << r.scaled_residual;
    if (!r.detail.empty()) os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    os << "}";
  }
  os << "\n  ]\n}\n";

  const std::string json = os.str();
  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "treesvd_torture: cannot write " << path << "\n";
      return 2;
    }
    f << json;
    std::cout << (pass ? "PASS" : "FAIL") << ": " << reports.size()
              << " engine x ordering x case torture runs, report written to " << path << "\n";
  }
  if (!pass)
    for (const RunReport& r : reports)
      if (!r.ok)
        std::cerr << "violation: " << r.engine << " x " << r.ordering << " on " << r.kase << ": "
                  << r.detail << "\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::torture

int main(int argc, char** argv) { return treesvd::torture::main(argc, argv); }
