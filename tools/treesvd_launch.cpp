// treesvd_launch — multi-process rank launcher and socket-backend acceptance
// gate.
//
// For every registered ordering and every requested problem width the tool
// runs spmd_jacobi twice on the same matrix: once on the default in-process
// backend (ranks as threads, the bitwise reference) and once with
// SpmdTransport::backend == mp::Backend::kSocket, where every rank is its own
// OS process speaking length-prefixed frames over UNIX-domain sockets. The
// contract is the transport-independence claim of DESIGN.md §15: sigma, U, V,
// every progress counter, and both determinism digests must be *bit-identical*
// across backends. With --chaos each socket case additionally replays a
// hostile fault plan (drops, duplicates, corruption, delays, one SIGKILLed
// rank process with respawn + checkpoint rollback) and must still reproduce
// the reference bit-for-bit.
//
// Exit status is the contract: 0 when every case is bit-identical, 1 when any
// diverged (or died), 2 on usage error. The JSON report (stdout, or
// --json=PATH) carries per-case digests and the socket run's RecoveryStats so
// CI can archive and diff them across commits.
//
// Usage:
//   treesvd_launch [--sizes=8,16] [--ordering=NAME] [--rows-extra=8]
//                  [--chaos] [--seed=42] [--json=PATH]

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/determinism.hpp"
#include "svd/spmd.hpp"
#include "util/cli.hpp"

namespace treesvd::launch {
namespace {

/// First divergence between the socket run and the in-process reference, as a
/// diagnostic string; empty when the runs are bit-identical.
std::string first_divergence(const SvdResult& got, const SvdResult& want) {
  if (got.converged != want.converged) return "converged flag differs";
  if (got.sweeps != want.sweeps)
    return "sweeps " + std::to_string(got.sweeps) + " != " + std::to_string(want.sweeps);
  if (got.rotations != want.rotations) return "rotation count differs";
  if (got.swaps != want.swaps) return "swap count differs";
  for (std::size_t k = 0; k < want.sigma.size(); ++k)
    if (got.sigma[k] != want.sigma[k]) return "sigma[" + std::to_string(k) + "] differs bitwise";
  if (!(got.u == want.u)) return "U differs bitwise";
  if (!(got.v == want.v)) return "V differs bitwise";
  if (result_core_digest(got) != result_core_digest(want)) return "core digest differs";
  if (result_digest(got) != result_digest(want))
    return "kernel pass counters differ (full digest)";
  return {};
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

std::string recovery_json(const mp::RecoveryStats& s) {
  std::ostringstream os;
  os << "{\"drops_seen\": " << s.drops_seen << ", \"corruptions_detected\": "
     << s.corruptions_detected << ", \"duplicates_suppressed\": " << s.duplicates_suppressed
     << ", \"kills\": " << s.kills << ", \"retries\": " << s.retries
     << ", \"resends\": " << s.resends << ", \"checkpoints\": " << s.checkpoints
     << ", \"rollbacks\": " << s.rollbacks << "}";
  return os.str();
}

struct CaseReport {
  std::string ordering;
  int n = 0;
  bool bit_identical = false;
  std::string detail;  ///< divergence or exception text; empty on success
  std::uint64_t core_digest = 0;
  std::uint64_t full_digest = 0;
  mp::RecoveryStats recovery;  ///< from the socket run
};

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  return out;
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_launch [--sizes=8,16] [--ordering=NAME] [--rows-extra=8]\n"
                 "                      [--chaos] [--seed=42] [--json=PATH]\n"
                 "Runs spmd_jacobi over rank processes (UNIX-socket backend) and gates\n"
                 "bitwise identity with the in-process backend; --chaos adds physical\n"
                 "faults including a SIGKILLed rank with respawn + rollback.\n";
    return 0;
  }

  const std::vector<int> sizes = parse_sizes(cli.get("sizes", "8,16"));
  const int rows_extra = static_cast<int>(cli.get_int("rows-extra", 8));
  const bool chaos = cli.has("chaos");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (sizes.empty() || rows_extra < 0) {
    std::cerr << "treesvd_launch: need nonempty --sizes and --rows-extra >= 0\n";
    return 2;
  }
  for (const int n : sizes)
    if (n < 4 || n % 2 != 0) {
      std::cerr << "treesvd_launch: sizes must be even and >= 4, got " << n << "\n";
      return 2;
    }

  std::vector<std::string> names;
  if (cli.has("ordering")) {
    names.push_back(cli.get("ordering", ""));
  } else {
    names = ordering_names();
  }

  std::vector<CaseReport> reports;
  bool pass = true;
  for (const std::string& name : names) {
    OrderingPtr ordering;
    try {
      ordering = make_ordering(name);
    } catch (const std::invalid_argument& e) {
      std::cerr << "treesvd_launch: " << e.what() << "\n";
      return 2;
    }
    for (const int n : sizes) {
      CaseReport r;
      r.ordering = name;
      r.n = n;
      // Fixed per-(ordering, n) matrix so the reference and the socket run
      // factor the same input; the engine pads n to a supported width itself.
      Rng rng(2026 + static_cast<std::uint64_t>(n));
      const Matrix a = random_gaussian(static_cast<std::size_t>(n + rows_extra),
                                      static_cast<std::size_t>(n), rng);
      try {
        const SvdResult reference = spmd_jacobi(a, *ordering);

        SpmdTransport transport;
        transport.backend = mp::Backend::kSocket;
        if (chaos) {
          transport.reliable.enabled = true;
          transport.reliable.max_retries = 12;
          transport.faults.enabled = true;
          transport.faults.seed = seed;
          transport.faults.drop_prob = 0.08;
          transport.faults.duplicate_prob = 0.05;
          transport.faults.corrupt_prob = 0.05;
          transport.faults.delay_prob = 0.02;
          transport.faults.kill_rank = 1;
          transport.faults.kill_at_op = 17;
        }
        transport.recovery.checkpoint_sweeps = 1;
        transport.recovery.max_rollbacks = 8;

        SpmdStats stats;
        const SvdResult over_sockets = spmd_jacobi(a, *ordering, {}, &stats, &transport);
        r.detail = first_divergence(over_sockets, reference);
        r.bit_identical = r.detail.empty();
        r.core_digest = result_core_digest(over_sockets);
        r.full_digest = result_digest(over_sockets);
        r.recovery = stats.recovery;
      } catch (const std::exception& e) {
        // A rank-process death the recovery budget cannot absorb (or a config
        // the engine rejects) is a failed case, not a harness crash.
        r.detail = e.what();
      }
      pass = pass && r.bit_identical;
      reports.push_back(std::move(r));
    }
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_launch\",\n  \"version\": 1,\n";
  os << "  \"backend\": \"socket\",\n  \"chaos\": " << (chaos ? "true" : "false") << ",\n";
  os << "  \"sizes\": [";
  for (std::size_t i = 0; i < sizes.size(); ++i) os << (i ? ", " : "") << sizes[i];
  os << "],\n  \"pass\": " << (pass ? "true" : "false") << ",\n  \"cases\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CaseReport& r = reports[i];
    os << (i ? "," : "") << "\n    {\"ordering\": \"" << json_escape(r.ordering)
       << "\", \"n\": " << r.n
       << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false");
    if (!r.detail.empty()) os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    if (r.bit_identical)
      os << ", \"core_digest\": \"" << hex64(r.core_digest) << "\", \"full_digest\": \""
         << hex64(r.full_digest) << "\"";
    os << ", \"recovery\": " << recovery_json(r.recovery) << "}";
  }
  os << "\n  ]\n}\n";

  const std::string json = os.str();
  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "treesvd_launch: cannot write " << path << "\n";
      return 2;
    }
    f << json;
    std::cout << (pass ? "PASS" : "FAIL") << ": " << reports.size()
              << " socket-backend runs vs in-process reference, report written to " << path
              << "\n";
  }
  if (!pass)
    for (const CaseReport& r : reports)
      if (!r.bit_identical)
        std::cerr << "divergence: " << r.ordering << " n=" << r.n << ": " << r.detail << "\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::launch

int main(int argc, char** argv) { return treesvd::launch::main(argc, argv); }
