// treesvd_race — concurrency-analysis acceptance harness.
//
// For every threaded/SPMD engine x registry ordering, runs the happens-before
// race detector and the schedule-perturbation determinism oracle:
//
//  * Race detection: a vector-clock tracker (analysis/hb.hpp) receives
//    fork/join, message and barrier edges from the instrumented runtime and
//    checks every annotated shared access (NormCache columns, kernel/recovery
//    counters, GEMM reduction buffers, SPMD checkpoint ring). A race is two
//    conflicting accesses with no happens-before path — reported with both
//    access stacks, independent of how the host actually interleaved them.
//  * Determinism oracle: each engine runs under K seeded schedule
//    perturbations (chunk-order permutation + yield injection,
//    analysis/fuzz.hpp) and every run's SvdResult digest — sigma/U/V bits,
//    sweep and rotation counts, kernel stats — must equal the serial
//    reference bit-for-bit.
//
// The per-run results are emitted as machine-readable JSON (stdout, or
// --json=PATH); the exit status is the contract: 0 means zero races and all
// digests identical, 1 means at least one violation, 2 means usage error.
// --self-test proves the machinery can fail: a planted write-write race must
// be flagged (with both stacks) and a planted order-dependent reduction must
// diverge under perturbed schedules.
//
// Usage:
//   treesvd_race [--n=8] [--rows=12] [--seed=2026] [--schedules=16]
//                [--threads=4] [--engines=threaded,spmd,batched] [--orderings=...]
//                [--max-sweeps=60] [--json=PATH] [--self-test]

#if !defined(TREESVD_ANALYSIS) || !TREESVD_ANALYSIS

#include <iostream>

int main() {
  std::cerr << "treesvd_race: this build has no concurrency-analysis instrumentation;\n"
               "reconfigure with -DTREESVD_ANALYSIS=ON (default for Debug/RelWithDebInfo)\n";
  return 2;
}

#else

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/digest.hpp"
#include "analysis/fuzz.hpp"
#include "analysis/hb.hpp"
#include "analysis/hooks.hpp"
#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/batch.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/spmd.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace treesvd::race {
namespace {

struct Engine {
  std::string name;
  std::function<SvdResult(const Matrix&, const Ordering&, const JacobiOptions&)> run;
};

/// Mirrors the drivers' padding search (the torture harness idiom): can the
/// ordering schedule n columns, padded up to the drivers' 2n+4 limit?
bool schedulable(const Ordering& ord, int n) {
  for (int w = n; w <= 2 * n + 4; ++w)
    if (ord.supports(w)) return true;
  return false;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct ScheduleRun {
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;
  bool match = false;        ///< digest == serial reference
  std::size_t races = 0;
  std::size_t events = 0;    ///< tracker events observed (instrumentation liveness)
  std::size_t tasks = 0;     ///< logical tasks the tracker saw
  std::size_t yields = 0;    ///< fuzzer yields injected
};

struct RunReport {
  std::string engine;
  std::string ordering;
  bool ok = false;
  std::string detail;  ///< first violation or exception text; empty on success
  std::uint64_t serial_digest = 0;
  std::vector<ScheduleRun> schedules;
  std::vector<std::string> races;  ///< rendered race reports (both stacks)
};

const std::vector<Engine>& engines(unsigned threads) {
  static std::vector<Engine> kEngines;
  if (kEngines.empty()) {
    kEngines.push_back({"threaded", [threads](const Matrix& a, const Ordering& ord,
                                              const JacobiOptions& opt) {
                          return one_sided_jacobi_threaded(a, ord, opt, threads);
                        }});
    kEngines.push_back(
        {"spmd", [](const Matrix& a, const Ordering& ord, const JacobiOptions& opt) {
           return spmd_jacobi(a, ord, opt);
         }});
    // Batched engine: 5 identical copies across 2 SIMD shards on a shared
    // pool. Every lane must digest identically (same input, same schedule),
    // and the oracle then holds lane 0 to the serial reference — the full
    // bitwise contract under fuzzed shard interleavings.
    kEngines.push_back({"batched", [threads](const Matrix& a, const Ordering& ord,
                                             const JacobiOptions& opt) {
                          BatchedSvdOptions bopt;
                          bopt.jacobi = opt;
                          bopt.lane_width = 4;
                          BatchedSvd engine(a.rows(), a.cols(), ord, bopt);
                          const std::vector<Matrix> inputs(5, a);
                          ThreadPool pool(threads);
                          const auto rs =
                              engine.solve({inputs.data(), inputs.size()}, &pool);
                          const std::uint64_t d0 = result_digest(rs.front());
                          for (std::size_t b = 1; b < rs.size(); ++b)
                            if (result_digest(rs[b]) != d0)
                              throw std::runtime_error(
                                  "batched lane " + std::to_string(b) +
                                  " diverged from lane 0 on identical input");
                          return rs.front();
                        }});
  }
  return kEngines;
}

RunReport explore(const Engine& eng, const std::string& oname, const Matrix& a,
                  const JacobiOptions& opt, int schedules, std::uint64_t base_seed) {
  RunReport rep;
  rep.engine = eng.name;
  rep.ordering = oname;
  const OrderingPtr ordering = make_ordering(oname);

  const SvdResult serial = one_sided_jacobi(a, *ordering, opt);
  rep.serial_digest = result_digest(serial);

  bool ok = true;
  std::string detail;
  for (int k = 0; k < schedules; ++k) {
    analysis::FuzzPlan plan;
    plan.seed = analysis::mix64(base_seed ^ (static_cast<std::uint64_t>(k) + 1));
    analysis::ScopedFuzzer fuzzer(plan);
    analysis::ScopedTracker tracker;

    ScheduleRun run;
    run.seed = plan.seed;
    try {
      const SvdResult r = eng.run(a, *ordering, opt);
      run.digest = result_digest(r);
    } catch (const std::exception& e) {
      ok = false;
      if (detail.empty()) detail = std::string("schedule threw: ") + e.what();
    }
    run.match = run.digest == rep.serial_digest;
    run.races = tracker->race_count();
    run.events = tracker->event_count();
    run.tasks = tracker->task_count();
    run.yields = fuzzer->yields();
    if (!run.match && ok && detail.empty()) {
      ok = false;
      detail = "schedule seed " + std::to_string(run.seed) + " digest " + hex(run.digest) +
               " != serial " + hex(rep.serial_digest);
    }
    if (run.races != 0) {
      ok = false;
      if (detail.empty()) detail = std::to_string(run.races) + " data race(s) detected";
      for (const auto& r : tracker->reports())
        if (rep.races.size() < 16) rep.races.push_back(r.to_string());
    }
    if (run.events == 0 || run.tasks < 2) {
      ok = false;
      if (detail.empty())
        detail = "instrumentation dead: " + std::to_string(run.events) + " events, " +
                 std::to_string(run.tasks) + " tasks";
    }
    rep.schedules.push_back(run);
  }
  rep.ok = ok;
  rep.detail = detail;
  return rep;
}

// ---- self-test: prove the detector and the oracle can actually fail ----

bool self_test_planted_race(std::string* why) {
  analysis::ScopedTracker tracker;
  ThreadPool pool(4);
  double shared = 0.0;
  pool.parallel_for(
      8,
      [&](std::size_t i) {
        // Every chunk writes the same annotated location with no ordering
        // edge between chunks: a write-write race by construction.
        TREESVD_HB_WRITE(&shared, 0, "planted shared scalar");
        shared += static_cast<double>(i);
      },
      1);
  const auto reports = tracker->reports();
  if (reports.empty()) {
    *why = "planted write-write race was not detected";
    return false;
  }
  const analysis::RaceReport& r = reports.front();
  if (r.first.site.empty() || r.second.site.empty()) {
    *why = "race report is missing an access site";
    return false;
  }
  if (r.first.stack.empty() || r.second.stack.empty()) {
    *why = "race report is missing an access stack";
    return false;
  }
  std::cout << "self-test: planted race flagged: " << r.to_string() << "\n";
  return true;
}

/// Order-dependent floating-point reduction: a single CAS accumulator whose
/// final bits depend on summation order.
double order_dependent_sum(const analysis::FuzzPlan* plan) {
  std::optional<analysis::ScopedFuzzer> fuzzer;
  if (plan != nullptr) fuzzer.emplace(*plan);
  ThreadPool pool(4);
  std::atomic<double> sum{0.0};
  pool.parallel_for(
      64,
      [&](std::size_t i) {
        const double term = 1.0 / (3.0 * static_cast<double>(i) + 1.0);
        double cur = sum.load(std::memory_order_relaxed);
        while (!sum.compare_exchange_weak(cur, cur + term, std::memory_order_relaxed)) {
        }
      },
      1);
  return sum.load();
}

bool self_test_planted_divergence(std::string* why) {
  analysis::Fnv1a ref;
  ref.add_double(order_dependent_sum(nullptr));
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 8 && !diverged; ++seed) {
    analysis::FuzzPlan plan;
    plan.seed = analysis::mix64(seed);
    analysis::Fnv1a h;
    h.add_double(order_dependent_sum(&plan));
    diverged = h.value() != ref.value();
  }
  if (!diverged) {
    *why = "schedule fuzzer failed to perturb an order-dependent reduction";
    return false;
  }
  std::cout << "self-test: planted order-dependent reduction diverged under fuzzing\n";
  return true;
}

bool self_test_clean_run(std::string* why) {
  Rng rng(7);
  const Matrix a = random_gaussian(12, 8, rng);
  const OrderingPtr ordering = make_ordering("fat-tree");
  JacobiOptions opt;
  opt.grain = 1;
  const Engine eng = engines(4).front();
  const RunReport rep = explore(eng, "fat-tree", a, opt, 2, 99);
  if (!rep.ok) {
    *why = "clean threaded run failed the contract: " + rep.detail;
    return false;
  }
  std::cout << "self-test: clean threaded run race-free and digest-stable\n";
  return true;
}

int self_test() {
  std::string why;
  for (const auto check :
       {&self_test_planted_race, &self_test_planted_divergence, &self_test_clean_run}) {
    if (!check(&why)) {
      std::cerr << "treesvd_race self-test FAILED: " << why << "\n";
      return 1;
    }
  }
  std::cout << "treesvd_race self-test passed\n";
  return 0;
}

int main(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "usage: treesvd_race [--n=8] [--rows=12] [--seed=2026] [--schedules=16]\n"
                 "                    [--threads=4] [--engines=threaded,spmd,batched]\n"
                 "                    [--orderings=a,b,...] [--max-sweeps=60] [--json=PATH]\n"
                 "                    [--self-test]\n";
    return 0;
  }
  if (cli.has("self-test")) return self_test();

  const int n = static_cast<int>(cli.get_int("n", 8));
  const int rows = static_cast<int>(cli.get_int("rows", n + 4));
  const int schedules = static_cast<int>(cli.get_int("schedules", 16));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 4));
  if (n < 4 || n % 2 != 0 || rows < n || schedules < 1 || threads < 2) {
    std::cerr << "treesvd_race: need even n >= 4, rows >= n, schedules >= 1, threads >= 2\n";
    return 2;
  }

  std::vector<std::string> onames = ordering_names();
  if (cli.has("orderings")) onames = split_csv(cli.get("orderings", ""));
  std::vector<std::string> enames = {"threaded", "spmd", "batched"};
  if (cli.has("engines")) enames = split_csv(cli.get("engines", ""));

  Rng rng(base_seed);
  const Matrix a =
      random_gaussian(static_cast<std::size_t>(rows), static_cast<std::size_t>(n), rng);
  JacobiOptions opt;
  opt.max_sweeps = static_cast<int>(cli.get_int("max-sweeps", 60));
  // Grain 1 forces the chunked pool path (one logical task per leaf) even at
  // small n, so the tracker sees real concurrency on any host.
  opt.grain = 1;

  std::vector<RunReport> reports;
  bool pass = true;
  for (const Engine& eng : engines(threads)) {
    bool wanted = false;
    for (const auto& e : enames) wanted = wanted || e == eng.name;
    if (!wanted) continue;
    for (const std::string& oname : onames) {
      const OrderingPtr ordering = make_ordering(oname);
      if (!schedulable(*ordering, n)) continue;
      RunReport rep = explore(eng, oname, a, opt, schedules, base_seed);
      pass = pass && rep.ok;
      std::cerr << (rep.ok ? "ok   " : "FAIL ") << eng.name << " x " << oname;
      if (!rep.ok) std::cerr << ": " << rep.detail;
      std::cerr << "\n";
      reports.push_back(std::move(rep));
    }
  }
  if (reports.empty()) {
    std::cerr << "treesvd_race: nothing to run (check --engines/--orderings)\n";
    return 2;
  }

  std::ostringstream os;
  os << "{\n  \"tool\": \"treesvd_race\",\n  \"n\": " << n << ",\n  \"rows\": " << rows
     << ",\n  \"schedules\": " << schedules << ",\n  \"seed\": " << base_seed
     << ",\n  \"threads\": " << threads << ",\n  \"pass\": " << (pass ? "true" : "false")
     << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RunReport& r = reports[i];
    os << (i != 0 ? "," : "") << "\n    {\"engine\": \"" << json_escape(r.engine)
       << "\", \"ordering\": \"" << json_escape(r.ordering) << "\", \"ok\": "
       << (r.ok ? "true" : "false") << ", \"serial_digest\": \"" << hex(r.serial_digest) << "\"";
    if (!r.detail.empty()) os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    os << ", \"schedules\": [";
    for (std::size_t k = 0; k < r.schedules.size(); ++k) {
      const ScheduleRun& s = r.schedules[k];
      os << (k != 0 ? "," : "") << "{\"seed\": " << s.seed << ", \"digest\": \"" << hex(s.digest)
         << "\", \"match\": " << (s.match ? "true" : "false") << ", \"races\": " << s.races
         << ", \"events\": " << s.events << ", \"tasks\": " << s.tasks
         << ", \"yields\": " << s.yields << "}";
    }
    os << "]";
    if (!r.races.empty()) {
      os << ", \"races\": [";
      for (std::size_t k = 0; k < r.races.size(); ++k)
        os << (k != 0 ? "," : "") << "\"" << json_escape(r.races[k]) << "\"";
      os << "]";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";

  const std::string path = cli.get("json", "");
  if (path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream f(path);
    f << os.str();
    if (!f) {
      std::cerr << "treesvd_race: cannot write " << path << "\n";
      return 2;
    }
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace treesvd::race

int main(int argc, char** argv) { return treesvd::race::main(argc, argv); }

#endif  // TREESVD_ANALYSIS
